// StealDeque unit + stress tests. The stress cases are the repo's tsan
// canary for the exec module: every CI sanitizer leg runs them, and the
// deque's seq_cst formulation exists precisely so ThreadSanitizer models
// it exactly (no fences).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/steal_deque.hpp"
#include "exec/steal_loop.hpp"

namespace {

using eclat::exec::StealDeque;

TEST(StealDeque, OwnerPopsLifo) {
  StealDeque deque(8);
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.size_hint(), 3u);
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(3));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(2));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(1));
  EXPECT_EQ(deque.pop(), std::nullopt);
  EXPECT_EQ(deque.size_hint(), 0u);
}

TEST(StealDeque, ThievesStealFifo) {
  StealDeque deque(8);
  deque.push(1);
  deque.push(2);
  deque.push(3);
  EXPECT_EQ(deque.steal(), std::optional<std::size_t>(1));
  EXPECT_EQ(deque.pop(), std::optional<std::size_t>(3));
  EXPECT_EQ(deque.steal(), std::optional<std::size_t>(2));
  EXPECT_EQ(deque.steal(), std::nullopt);
  EXPECT_EQ(deque.pop(), std::nullopt);
}

TEST(StealDeque, PushAfterDrainReusesRing) {
  StealDeque deque(2);  // rounds up to capacity 2
  for (int round = 0; round < 10; ++round) {
    deque.push(static_cast<std::size_t>(round));
    deque.push(static_cast<std::size_t>(round) + 100);
    EXPECT_EQ(deque.steal(), std::optional<std::size_t>(round));
    EXPECT_EQ(deque.pop(),
              std::optional<std::size_t>(static_cast<std::size_t>(round) +
                                         100));
  }
  EXPECT_EQ(deque.pop(), std::nullopt);
}

/// Exactly-once delivery under owner-vs-thief contention: every pushed
/// task must be acquired by exactly one party, none lost, none duplicated.
void exactly_once_stress(std::size_t tasks, std::size_t thieves,
                         bool interleave_pushes) {
  StealDeque deque(tasks);
  std::atomic<std::size_t> remaining{tasks};
  std::vector<std::vector<std::size_t>> acquired(thieves + 1);

  std::vector<std::thread> pool;
  for (std::size_t thief = 0; thief < thieves; ++thief) {
    pool.emplace_back([&, thief] {
      while (remaining.load(std::memory_order_relaxed) > 0) {
        if (const std::optional<std::size_t> task = deque.steal()) {
          acquired[1 + thief].push_back(*task);
          remaining.fetch_sub(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: push everything (optionally popping along the way), then drain.
  for (std::size_t task = 0; task < tasks; ++task) {
    deque.push(task);
    if (interleave_pushes && task % 3 == 0) {
      if (const std::optional<std::size_t> got = deque.pop()) {
        acquired[0].push_back(*got);
        remaining.fetch_sub(1, std::memory_order_relaxed);
      }
    }
  }
  while (remaining.load(std::memory_order_relaxed) > 0) {
    if (const std::optional<std::size_t> got = deque.pop()) {
      acquired[0].push_back(*got);
      remaining.fetch_sub(1, std::memory_order_relaxed);
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : pool) t.join();

  std::vector<std::size_t> all;
  for (const std::vector<std::size_t>& part : acquired) {
    all.insert(all.end(), part.begin(), part.end());
  }
  ASSERT_EQ(all.size(), tasks);
  std::sort(all.begin(), all.end());
  for (std::size_t task = 0; task < tasks; ++task) {
    ASSERT_EQ(all[task], task) << "task lost or duplicated";
  }
}

TEST(StealDeque, ExactlyOnceUnderContention) {
  exactly_once_stress(20'000, 3, /*interleave_pushes=*/false);
}

TEST(StealDeque, ExactlyOnceWithInterleavedPushes) {
  exactly_once_stress(20'000, 3, /*interleave_pushes=*/true);
}

TEST(StealDeque, ExactlyOnceManyThieves) {
  exactly_once_stress(5'000, 7, /*interleave_pushes=*/true);
}

/// Regression for the worker-loop termination accounting: before
/// steal_loop.hpp, a task that threw skipped its tasks_left retirement
/// on some paths, so the surviving workers spun forever on a count that
/// could never drain (and a double-retirement variant underflowed it).
/// Every task body — including the throwing one, stolen or owned — must
/// retire exactly one unit, and the escape must release the peers.
void throwing_task_stress(std::size_t workers, std::size_t poison) {
  const std::size_t tasks = 64;
  std::deque<StealDeque> deques;
  std::vector<std::atomic<std::int64_t>> loads(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    deques.emplace_back(tasks);
    loads[w].store(0, std::memory_order_relaxed);
  }
  // Everything seeded on worker 0: the other workers must steal, so the
  // poison task is executed as a *stolen* task whenever workers > 1.
  for (std::size_t task = tasks; task-- > 0;) deques[0].push(task);
  loads[0].store(static_cast<std::int64_t>(tasks),
                 std::memory_order_relaxed);

  std::atomic<std::size_t> tasks_left{tasks};
  std::atomic<bool> aborted{false};
  std::atomic<std::size_t> executed{0};
  std::vector<std::thread> pool;
  std::vector<std::atomic<bool>> threw(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      try {
        eclat::exec::run_stealing_loop(
            w, deques, loads, tasks_left, aborted, [](std::size_t) {
              return std::int64_t{1};
            },
            [&](std::size_t task) {
              if (task == poison) {
                throw std::runtime_error("poisoned task");
              }
              executed.fetch_add(1, std::memory_order_relaxed);
            });
      } catch (const std::runtime_error&) {
        threw[w].store(true, std::memory_order_relaxed);
      }
    });
  }
  // The join must happen: peers may not spin forever on a leaked unit.
  for (std::thread& t : pool) t.join();

  std::size_t throwers = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    if (threw[w].load(std::memory_order_relaxed)) ++throwers;
  }
  ASSERT_EQ(throwers, 1u) << "exactly one worker sees the escape";
  EXPECT_TRUE(aborted.load(std::memory_order_relaxed));
  // Exception-exact accounting: acquired units were all retired — the
  // count reflects exactly the tasks still queued, with no underflow.
  const std::size_t left = tasks_left.load(std::memory_order_relaxed);
  const std::size_t done = executed.load(std::memory_order_relaxed);
  EXPECT_LE(left, tasks);
  EXPECT_EQ(done + 1, tasks - left)
      << "every acquired task retired exactly one unit";
}

TEST(StealDeque, ThrowingOwnedTaskRetiresItsUnitAndReleasesPeers) {
  // Single worker: the poison task is acquired by the owner's own pop.
  throwing_task_stress(1, 17);
}

TEST(StealDeque, ThrowingStolenTaskRetiresItsUnitAndReleasesPeers) {
  // Four workers, all tasks seeded on worker 0: the poison task is
  // overwhelmingly likely to be acquired via steal(); either way the
  // loop must drain and join.
  for (std::size_t round = 0; round < 20; ++round) {
    throwing_task_stress(4, 17);
  }
}

}  // namespace
