#include "apriori/dhp.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(DhpBucket, DeterministicAndInRange) {
  for (std::size_t buckets : {16u, 1024u, 65536u}) {
    EXPECT_LT(dhp_bucket({1, 2}, buckets), buckets);
    EXPECT_EQ(dhp_bucket({1, 2}, buckets), dhp_bucket({1, 2}, buckets));
  }
  EXPECT_NE(dhp_bucket({1, 2}, 1 << 16), dhp_bucket({1, 3}, 1 << 16));
}

TEST(Dhp, MatchesAprioriOnHandmade) {
  DhpConfig config;
  config.minsup = 4;
  AprioriConfig reference;
  reference.minsup = 4;
  EXPECT_TRUE(same_itemsets(dhp(handmade_db(), config),
                            apriori(handmade_db(), reference)));
}

class DhpSweep : public ::testing::TestWithParam<Count> {};

TEST_P(DhpSweep, MatchesAprioriAcrossSupports) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  DhpConfig config;
  config.minsup = GetParam();
  AprioriConfig reference;
  reference.minsup = GetParam();
  EXPECT_TRUE(same_itemsets(dhp(db, config), apriori(db, reference)));
}

INSTANTIATE_TEST_SUITE_P(Supports, DhpSweep,
                         ::testing::Values(3u, 5u, 8u, 15u, 40u));

TEST(Dhp, TinyHashTableStillCorrect) {
  // Heavy bucket collisions only weaken the filter (more false
  // candidates), never the answer.
  const HorizontalDatabase db = small_quest_db();
  DhpConfig config;
  config.minsup = 5;
  config.hash_buckets = 8;
  AprioriConfig reference;
  reference.minsup = 5;
  EXPECT_TRUE(same_itemsets(dhp(db, config), apriori(db, reference)));
}

TEST(Dhp, TrimmingOffStillCorrect) {
  const HorizontalDatabase db = small_quest_db();
  DhpConfig config;
  config.minsup = 5;
  config.trim_transactions = false;
  AprioriConfig reference;
  reference.minsup = 5;
  EXPECT_TRUE(same_itemsets(dhp(db, config), apriori(db, reference)));
}

TEST(Dhp, HashFilterShrinksCandidateSets) {
  const HorizontalDatabase db = small_quest_db(600, 40, 21);
  DhpConfig config;
  config.minsup = 12;
  DhpStats stats;
  dhp(db, config, &stats);
  // The point of DHP: fewer candidates actually counted.
  EXPECT_LT(stats.c2_filtered, stats.c2_unfiltered);
  EXPECT_LE(stats.c3_filtered, stats.c3_unfiltered);
  EXPECT_GT(stats.items_trimmed, 0u);
}

TEST(Dhp, FilterIsSound) {
  // No frequent pair may be filtered: every frequent 2-itemset's bucket
  // count is at least its support.
  const HorizontalDatabase db = small_quest_db();
  const Count minsup = 5;
  DhpConfig config;
  config.minsup = minsup;
  const MiningResult mined = dhp(db, config);
  AprioriConfig reference;
  reference.minsup = minsup;
  const MiningResult expected = apriori(db, reference);
  EXPECT_EQ(mined.count_of_size(2), expected.count_of_size(2));
}

TEST(Dhp, EmptyAndDegenerate) {
  DhpConfig config;
  config.minsup = 1;
  EXPECT_TRUE(dhp(HorizontalDatabase{}, config).itemsets.empty());

  std::vector<Transaction> one = {{0, {0, 1}}};
  const HorizontalDatabase db(std::move(one), 2);
  const MiningResult result = dhp(db, config);
  EXPECT_EQ(result.itemsets.size(), 3u);  // {0}, {1}, {0,1}
}

}  // namespace
}  // namespace eclat
