#include "hashtree/hash_tree.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.hpp"
#include "gen/quest.hpp"

namespace eclat {
namespace {

/// Ground truth: count subset containment by brute force.
std::map<Itemset, Count> brute_force_counts(
    const std::vector<Itemset>& candidates,
    const std::vector<Transaction>& transactions) {
  std::map<Itemset, Count> counts;
  for (const Itemset& candidate : candidates) counts[candidate] = 0;
  for (const Transaction& t : transactions) {
    for (const Itemset& candidate : candidates) {
      if (is_subset(candidate, t.items)) ++counts[candidate];
    }
  }
  return counts;
}

TEST(HashTree, InsertAndFind) {
  HashTree tree(2);
  tree.insert({1, 2});
  tree.insert({1, 3});
  tree.insert({4, 7});
  EXPECT_EQ(tree.size(), 3u);
  ASSERT_NE(tree.find({1, 3}), nullptr);
  EXPECT_EQ(tree.find({1, 3})->count, 0u);
  EXPECT_EQ(tree.find({2, 3}), nullptr);
  EXPECT_EQ(tree.find({1, 2, 3}), nullptr);  // wrong length
}

TEST(HashTree, RejectsWrongLengthInsert) {
  HashTree tree(3);
  EXPECT_THROW(tree.insert({1, 2}), std::invalid_argument);
}

TEST(HashTree, RejectsDegenerateConfig) {
  EXPECT_THROW(HashTree(0), std::invalid_argument);
  HashTreeConfig config;
  config.fanout = 1;
  EXPECT_THROW(HashTree(2, config), std::invalid_argument);
}

TEST(HashTree, CountsSimpleTransactions) {
  HashTree tree(2);
  tree.insert({0, 1});
  tree.insert({1, 2});
  tree.insert({0, 2});
  tree.count_transaction({0, {0, 1, 2}});
  tree.count_transaction({1, {1, 2}});
  tree.count_transaction({2, {0}});  // too short, no candidate fits
  EXPECT_EQ(tree.find({0, 1})->count, 1u);
  EXPECT_EQ(tree.find({1, 2})->count, 2u);
  EXPECT_EQ(tree.find({0, 2})->count, 1u);
}

TEST(HashTree, NoDoubleCountingThroughMultipleHashPaths) {
  // With tiny fanout, many items collide into the same buckets and a leaf
  // is reachable through several descent paths; each candidate must still
  // be counted at most once per transaction.
  HashTreeConfig config;
  config.fanout = 2;
  config.leaf_capacity = 1;
  HashTree tree(2, config);
  tree.insert({0, 2});
  tree.insert({2, 4});
  tree.insert({0, 4});
  tree.count_transaction({0, {0, 2, 4, 6, 8}});
  EXPECT_EQ(tree.find({0, 2})->count, 1u);
  EXPECT_EQ(tree.find({2, 4})->count, 1u);
  EXPECT_EQ(tree.find({0, 4})->count, 1u);
}

TEST(HashTree, SplitsLeavesBeyondCapacity) {
  HashTreeConfig config;
  config.fanout = 4;
  config.leaf_capacity = 2;
  HashTree tree(3, config);
  for (Item a = 0; a < 6; ++a) {
    tree.insert({a, static_cast<Item>(a + 1), static_cast<Item>(a + 2)});
  }
  EXPECT_EQ(tree.size(), 6u);
  EXPECT_GT(tree.node_count(), 1u);  // must have split
  // All candidates still findable after splits.
  for (Item a = 0; a < 6; ++a) {
    EXPECT_NE(
        tree.find({a, static_cast<Item>(a + 1), static_cast<Item>(a + 2)}),
        nullptr);
  }
}

TEST(HashTree, ForEachVisitsEveryCandidateOnce) {
  HashTree tree(2);
  std::vector<Itemset> inserted;
  for (Item a = 0; a < 10; ++a) {
    for (Item b = a + 1; b < 10; ++b) {
      tree.insert({a, b});
      inserted.push_back({a, b});
    }
  }
  std::vector<Itemset> visited;
  tree.for_each(
      [&](const Candidate& candidate) { visited.push_back(candidate.items); });
  std::sort(visited.begin(), visited.end(), lex_less);
  std::sort(inserted.begin(), inserted.end(), lex_less);
  EXPECT_EQ(visited, inserted);
}

struct HashTreeParam {
  std::size_t fanout;
  std::size_t leaf_capacity;
  bool short_circuit;
  bool balanced;
};

class HashTreeCountMatrix : public ::testing::TestWithParam<HashTreeParam> {};

TEST_P(HashTreeCountMatrix, MatchesBruteForceOnGeneratedData) {
  const HashTreeParam param = GetParam();

  gen::QuestConfig gen_config;
  gen_config.num_transactions = 400;
  gen_config.num_items = 40;
  gen_config.num_patterns = 12;
  gen_config.avg_pattern_length = 4;
  gen_config.avg_transaction_length = 8;
  gen_config.seed = 11;
  const HorizontalDatabase db = gen::QuestGenerator(gen_config).generate();

  // Candidate pool: random 3-itemsets.
  Rng rng(55);
  std::vector<Itemset> candidates;
  for (int i = 0; i < 60; ++i) {
    Itemset candidate;
    while (candidate.size() < 3) {
      const Item item = static_cast<Item>(rng.below(40));
      if (std::find(candidate.begin(), candidate.end(), item) ==
          candidate.end()) {
        candidate.push_back(item);
      }
    }
    std::sort(candidate.begin(), candidate.end());
    candidates.push_back(std::move(candidate));
  }
  std::sort(candidates.begin(), candidates.end(), lex_less);
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  HashTreeConfig config;
  config.fanout = param.fanout;
  config.leaf_capacity = param.leaf_capacity;
  config.short_circuit = param.short_circuit;
  std::vector<std::uint32_t> bucket_map;
  if (param.balanced) {
    std::vector<Count> freq(40, 0);
    for (const Transaction& t : db.transactions()) {
      for (Item item : t.items) ++freq[item];
    }
    bucket_map = balanced_bucket_map(freq, param.fanout);
  }

  HashTree tree(3, config, bucket_map);
  for (const Itemset& candidate : candidates) tree.insert(candidate);
  tree.count_all(db.transactions());

  const auto expected = brute_force_counts(candidates, db.transactions());
  for (const Itemset& candidate : candidates) {
    ASSERT_NE(tree.find(candidate), nullptr);
    EXPECT_EQ(tree.find(candidate)->count, expected.at(candidate))
        << to_string(candidate);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigSweep, HashTreeCountMatrix,
    ::testing::Values(HashTreeParam{32, 16, true, false},
                      HashTreeParam{32, 16, false, false},
                      HashTreeParam{2, 1, true, false},
                      HashTreeParam{2, 1, false, false},
                      HashTreeParam{7, 3, true, true},
                      HashTreeParam{32, 16, true, true},
                      HashTreeParam{4, 2, false, true}));

TEST(BalancedBucketMap, SpreadsHeavyItemsAcrossBuckets) {
  // Frequencies descending with item id: heaviest items must land in
  // different buckets.
  std::vector<Count> freq = {100, 90, 80, 70, 60, 50, 40, 30};
  const auto map = balanced_bucket_map(freq, 4);
  ASSERT_EQ(map.size(), 8u);
  EXPECT_EQ(map[0], 0u);
  EXPECT_EQ(map[1], 1u);
  EXPECT_EQ(map[2], 2u);
  EXPECT_EQ(map[3], 3u);
  EXPECT_EQ(map[4], 0u);  // wraps round-robin
}

TEST(BalancedBucketMap, AllBucketsWithinFanout) {
  std::vector<Count> freq(100);
  Rng rng(3);
  for (Count& f : freq) f = rng.below(1000);
  const auto map = balanced_bucket_map(freq, 8);
  for (std::uint32_t bucket : map) EXPECT_LT(bucket, 8u);
}

}  // namespace
}  // namespace eclat
