// Deterministic stress for the mc synchronization layer — the TSan canary
// for the cluster simulation. All shared state below is deliberately
// plain (non-atomic): if PhaseBarrier or the cluster collectives ever
// lose an ordering edge, ThreadSanitizer flags these tests first.
#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "mc/cluster.hpp"
#include "mc/phase_barrier.hpp"
#include "mc/topology.hpp"

namespace eclat::mc {
namespace {

constexpr std::size_t kThreads = 8;
constexpr std::size_t kPhases = 400;

TEST(PhaseBarrierStress, OnLastRunsExactlyOncePerPhase) {
  PhaseBarrier barrier(kThreads);
  std::size_t fold_count = 0;  // written only inside on_last (exclusive)
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (std::size_t phase = 0; phase < kPhases; ++phase) {
        barrier.arrive_and_wait([&] { ++fold_count; });
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(fold_count, kPhases);
}

TEST(PhaseBarrierStress, PublishesAreVisibleToTheFoldAndToPeers) {
  PhaseBarrier barrier(kThreads);
  // slots[t] is written by thread t before the barrier, read by the fold
  // and by every peer after release — all without atomics. The barrier
  // must supply every one of those happens-before edges.
  std::vector<std::size_t> slots(kThreads, 0);
  std::vector<std::size_t> fold_sums;
  fold_sums.reserve(kPhases);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t phase = 1; phase <= kPhases; ++phase) {
        slots[t] = phase * (t + 1);
        barrier.arrive_and_wait([&] {
          std::size_t sum = 0;
          for (std::size_t slot : slots) sum += slot;
          fold_sums.push_back(sum);
        });
        // Every peer's publish must be visible after release.
        for (std::size_t peer = 0; peer < kThreads; ++peer) {
          ASSERT_EQ(slots[peer], phase * (peer + 1));
        }
        barrier.arrive_and_wait();  // keep phases in lock step
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  ASSERT_EQ(fold_sums.size(), kPhases);
  const std::size_t weights = kThreads * (kThreads + 1) / 2;
  for (std::size_t phase = 1; phase <= kPhases; ++phase) {
    EXPECT_EQ(fold_sums[phase - 1], phase * weights);
  }
}

TEST(PhaseBarrierStress, ReusableAcrossGenerationsWithoutLostWakeups) {
  // Two-participant ping-pong maximizes generation turnover, the classic
  // spot for lost-wakeup bugs in reusable barriers.
  PhaseBarrier barrier(2);
  std::size_t counter = 0;
  auto body = [&] {
    for (std::size_t phase = 0; phase < 4 * kPhases; ++phase) {
      barrier.arrive_and_wait([&] { ++counter; });
    }
  };
  std::thread a(body);
  std::thread b(body);
  a.join();
  b.join();
  EXPECT_EQ(counter, 4 * kPhases);
}

TEST(PhaseBarrierStress, ClusterCollectivesUnderRepeatedMixedTraffic) {
  // Drive every collective of the mc layer back to back on a 2x2 virtual
  // cluster. Non-atomic per-processor scratch plus the collectives' own
  // internal slots give TSan full coverage of the fold/publish/consume
  // protocol described in cluster.cpp.
  const Topology topology{2, 2};
  Cluster cluster(topology);
  const std::size_t total = topology.total();
  constexpr std::size_t kRounds = 40;

  std::vector<std::size_t> scratch(total, 0);
  cluster.run([&](Processor& self) {
    const std::size_t me = self.id();
    for (std::size_t round = 1; round <= kRounds; ++round) {
      // sum_reduce: every element must become the global sum.
      std::vector<Count> values(4, static_cast<Count>(me + round));
      self.sum_reduce(values);
      Count expected = 0;
      for (std::size_t p = 0; p < total; ++p) expected += p + round;
      for (Count value : values) ASSERT_EQ(value, expected);

      // broadcast from a rotating root.
      const std::size_t root = round % total;
      Blob payload;
      if (me == root) payload.assign(16, static_cast<std::uint8_t>(round));
      const Blob received = self.broadcast(root, std::move(payload));
      ASSERT_EQ(received.size(), 16u);
      ASSERT_EQ(received.front(), static_cast<std::uint8_t>(round));

      // all_to_all: processor d receives byte (src ^ round) from src.
      std::vector<Blob> outgoing(total);
      for (std::size_t dst = 0; dst < total; ++dst) {
        outgoing[dst].assign(8, static_cast<std::uint8_t>(me ^ round));
      }
      const std::vector<Blob> incoming =
          self.all_to_all(std::move(outgoing));
      for (std::size_t src = 0; src < total; ++src) {
        ASSERT_EQ(incoming[src].front(),
                  static_cast<std::uint8_t>(src ^ round));
      }

      // all_gather + plain-scratch publish/consume across a barrier.
      scratch[me] = round * (me + 1);
      const std::vector<Blob> gathered =
          self.all_gather(Blob(4, static_cast<std::uint8_t>(me)));
      ASSERT_EQ(gathered.size(), total);
      self.barrier();
      for (std::size_t peer = 0; peer < total; ++peer) {
        ASSERT_EQ(scratch[peer], round * (peer + 1));
      }
      self.barrier();  // scratch consumed before the next round's publish
    }
  });
}

}  // namespace
}  // namespace eclat::mc
