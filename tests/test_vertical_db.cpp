#include "vertical/vertical_db.hpp"

#include <gtest/gtest.h>

#include "gen/quest.hpp"

namespace eclat {
namespace {

std::vector<Transaction> sample_transactions() {
  return {
      {0, {0, 1, 2}},
      {1, {1, 2}},
      {2, {0, 2}},
      {3, {0, 1, 2, 3}},
  };
}

TEST(PairKey, PacksAndUnpacksCanonically) {
  const PairKey key = make_pair_key(3, 9);
  EXPECT_EQ(pair_first(key), 3u);
  EXPECT_EQ(pair_second(key), 9u);
  EXPECT_EQ(make_pair_key(9, 3), key);  // order-insensitive
}

TEST(PairKey, OrdersLexicographically) {
  EXPECT_LT(make_pair_key(1, 2), make_pair_key(1, 3));
  EXPECT_LT(make_pair_key(1, 9), make_pair_key(2, 3));
}

TEST(InvertItems, BuildsSortedTidLists) {
  const auto transactions = sample_transactions();
  const std::vector<TidList> lists = invert_items(transactions, 4);
  ASSERT_EQ(lists.size(), 4u);
  EXPECT_EQ(lists[0], (TidList{0, 2, 3}));
  EXPECT_EQ(lists[1], (TidList{0, 1, 3}));
  EXPECT_EQ(lists[2], (TidList{0, 1, 2, 3}));
  EXPECT_EQ(lists[3], (TidList{3}));
}

TEST(InvertPairs, BuildsOnlyRequestedPairs) {
  const auto transactions = sample_transactions();
  const std::vector<PairKey> pairs = {make_pair_key(0, 1),
                                      make_pair_key(1, 2)};
  const auto lists = invert_pairs(transactions, pairs);
  ASSERT_EQ(lists.size(), 2u);
  EXPECT_EQ(lists.at(make_pair_key(0, 1)), (TidList{0, 3}));
  EXPECT_EQ(lists.at(make_pair_key(1, 2)), (TidList{0, 1, 3}));
}

TEST(InvertPairs, PairTidlistEqualsItemTidlistIntersection) {
  // Property: for any pair {a,b}, tidlist(ab) == tidlist(a) ∩ tidlist(b).
  const HorizontalDatabase db = [&] {
    gen::QuestConfig config;
    config.num_transactions = 500;
    config.num_items = 30;
    config.num_patterns = 10;
    config.avg_pattern_length = 3;
    config.avg_transaction_length = 6;
    return gen::QuestGenerator(config).generate();
  }();
  const std::vector<TidList> items =
      invert_items(db.transactions(), db.num_items());
  std::vector<PairKey> pairs;
  for (Item a = 0; a < 10; ++a) {
    for (Item b = a + 1; b < 10; ++b) pairs.push_back(make_pair_key(a, b));
  }
  const auto lists = invert_pairs(db.transactions(), pairs);
  for (PairKey key : pairs) {
    EXPECT_EQ(lists.at(key),
              intersect(items[pair_first(key)], items[pair_second(key)]));
  }
}

TEST(TriangleCounter, CountsAllPairsOfEachTransaction) {
  TriangleCounter counter(4);
  const auto transactions = sample_transactions();
  counter.count(transactions);
  EXPECT_EQ(counter.get(0, 1), 2u);  // tids 0, 3
  EXPECT_EQ(counter.get(0, 2), 3u);  // tids 0, 2, 3
  EXPECT_EQ(counter.get(1, 2), 3u);  // tids 0, 1, 3
  EXPECT_EQ(counter.get(0, 3), 1u);
  EXPECT_EQ(counter.get(2, 3), 1u);
  EXPECT_EQ(counter.get(3, 1), 1u);  // arguments commute
}

TEST(TriangleCounter, IndexingCoversWholeTriangleWithoutCollision) {
  // Bump each pair exactly once via single-pair transactions and verify
  // every cell reads back 1 (no aliasing in the triangular indexing).
  constexpr Item kN = 17;
  TriangleCounter counter(kN);
  std::vector<Transaction> transactions;
  Tid tid = 0;
  for (Item a = 0; a < kN; ++a) {
    for (Item b = a + 1; b < kN; ++b) {
      transactions.push_back({tid++, {a, b}});
    }
  }
  counter.count(transactions);
  for (Item a = 0; a < kN; ++a) {
    for (Item b = a + 1; b < kN; ++b) {
      EXPECT_EQ(counter.get(a, b), 1u) << "pair " << a << "," << b;
    }
  }
}

TEST(TriangleCounter, MergeAccumulatesElementwise) {
  TriangleCounter a(3);
  TriangleCounter b(3);
  std::vector<Transaction> first = {{0, {0, 1}}};
  std::vector<Transaction> second = {{1, {0, 1}}, {2, {1, 2}}};
  a.count(first);
  b.count(second);
  a.merge(b);
  EXPECT_EQ(a.get(0, 1), 2u);
  EXPECT_EQ(a.get(1, 2), 1u);
  EXPECT_EQ(a.get(0, 2), 0u);
}

TEST(TriangleCounter, MergeRejectsSizeMismatch) {
  TriangleCounter a(3);
  TriangleCounter b(4);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(TriangleCounter, FrequentPairsSortedAndThresholded) {
  TriangleCounter counter(4);
  counter.count(sample_transactions());
  const std::vector<PairKey> frequent = counter.frequent_pairs(2);
  ASSERT_EQ(frequent.size(), 3u);
  EXPECT_EQ(frequent[0], make_pair_key(0, 1));
  EXPECT_EQ(frequent[1], make_pair_key(0, 2));
  EXPECT_EQ(frequent[2], make_pair_key(1, 2));
  EXPECT_TRUE(std::is_sorted(frequent.begin(), frequent.end()));
}

TEST(TriangleCounter, InvalidArgumentsThrow) {
  TriangleCounter counter(3);
  EXPECT_THROW(counter.get(1, 1), std::out_of_range);
  EXPECT_THROW(counter.get(0, 3), std::out_of_range);
  EXPECT_THROW(TriangleCounter{1}, std::invalid_argument);
}

}  // namespace
}  // namespace eclat
