// Cross-module integration: every algorithm in the library must produce
// the identical set of frequent itemsets on the same data, across supports
// and cluster topologies; the public API facade must drive them all.
#include <gtest/gtest.h>

#include "api/mining.hpp"
#include "data/io.hpp"
#include "parallel/candidate_distribution.hpp"
#include "parallel/data_distribution.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::same_itemsets;

struct CrossParam {
  std::size_t transactions;
  Item items;
  std::uint64_t seed;
  Count minsup;
};

class AllAlgorithmsAgree : public ::testing::TestWithParam<CrossParam> {};

TEST_P(AllAlgorithmsAgree, OnGeneratedDatabases) {
  const CrossParam param = GetParam();
  const HorizontalDatabase db =
      testutil::small_quest_db(param.transactions, param.items, param.seed);

  AprioriConfig apriori_config;
  apriori_config.minsup = param.minsup;
  const MiningResult reference = apriori(db, apriori_config);

  EclatConfig eclat_config;
  eclat_config.minsup = param.minsup;
  EXPECT_TRUE(same_itemsets(eclat_sequential(db, eclat_config), reference))
      << "sequential eclat";

  const mc::Topology topology{2, 2};
  {
    mc::Cluster cluster(topology);
    par::ParEclatConfig config;
    config.minsup = param.minsup;
    EXPECT_TRUE(
        same_itemsets(par::par_eclat(cluster, db, config).result, reference))
        << "parallel eclat";
  }
  {
    mc::Cluster cluster(topology);
    par::CountDistributionConfig config;
    config.minsup = param.minsup;
    EXPECT_TRUE(same_itemsets(
        par::count_distribution(cluster, db, config).result, reference))
        << "count distribution";
  }
  {
    mc::Cluster cluster(topology);
    par::CandidateDistributionConfig config;
    config.minsup = param.minsup;
    EXPECT_TRUE(same_itemsets(
        par::candidate_distribution(cluster, db, config).result, reference))
        << "candidate distribution";
  }
  {
    mc::Cluster cluster(topology);
    par::DataDistributionConfig config;
    config.minsup = param.minsup;
    EXPECT_TRUE(same_itemsets(
        par::data_distribution(cluster, db, config).result, reference))
        << "data distribution";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllAlgorithmsAgree,
    ::testing::Values(CrossParam{250, 20, 1, 4}, CrossParam{400, 30, 2, 6},
                      CrossParam{300, 25, 3, 3}, CrossParam{500, 40, 4, 10},
                      CrossParam{200, 15, 5, 2}));

TEST(ApiFacade, MineRunsEveryAlgorithm) {
  const HorizontalDatabase db = testutil::small_quest_db();
  api::MineOptions options;
  options.min_support = 0.02;

  options.algorithm = api::Algorithm::kApriori;
  const MiningResult reference = api::mine(db, options);
  EXPECT_FALSE(reference.itemsets.empty());

  for (const api::Algorithm algorithm :
       {api::Algorithm::kEclat, api::Algorithm::kEclatDiffsets,
        api::Algorithm::kDhp, api::Algorithm::kPartition,
        api::Algorithm::kParEclat, api::Algorithm::kHybridEclat,
        api::Algorithm::kCountDistribution}) {
    options.algorithm = algorithm;
    options.topology = mc::Topology{2, 2};
    const MiningResult result = api::mine(db, options);
    MiningResult a = reference;
    MiningResult b = result;
    EXPECT_TRUE(same_itemsets(a, b))
        << static_cast<int>(algorithm);
  }
}

TEST(ApiFacade, MineWithStatsReportsTimeForParallelRuns) {
  const HorizontalDatabase db = testutil::small_quest_db();
  api::MineOptions options;
  options.min_support = 0.02;
  options.algorithm = api::Algorithm::kParEclat;
  options.topology = mc::Topology{2, 2};
  const par::ParallelOutput output = api::mine_with_stats(db, options);
  EXPECT_GT(output.total_seconds, 0.0);
  EXPECT_FALSE(output.result.itemsets.empty());
}

TEST(ApiFacade, MineRulesEndToEnd) {
  const HorizontalDatabase db = testutil::small_quest_db();
  api::MineOptions options;
  options.min_support = 0.02;
  const auto rules = api::mine_rules(db, options, 0.7);
  for (const AssociationRule& rule : rules) {
    EXPECT_GE(rule.confidence, 0.7);
  }
}

TEST(ApiFacade, ParseAlgorithmNames) {
  EXPECT_EQ(api::parse_algorithm("eclat"), api::Algorithm::kEclat);
  EXPECT_EQ(api::parse_algorithm("declat"), api::Algorithm::kEclatDiffsets);
  EXPECT_EQ(api::parse_algorithm("apriori"), api::Algorithm::kApriori);
  EXPECT_EQ(api::parse_algorithm("dhp"), api::Algorithm::kDhp);
  EXPECT_EQ(api::parse_algorithm("partition"), api::Algorithm::kPartition);
  EXPECT_EQ(api::parse_algorithm("pareclat"), api::Algorithm::kParEclat);
  EXPECT_EQ(api::parse_algorithm("hybrid"), api::Algorithm::kHybridEclat);
  EXPECT_EQ(api::parse_algorithm("cd"),
            api::Algorithm::kCountDistribution);
  EXPECT_THROW(api::parse_algorithm("nope"), std::invalid_argument);
}

TEST(Integration, MiningSurvivesBinaryRoundTrip) {
  // Generate -> serialize -> parse -> mine must equal mining the original.
  const HorizontalDatabase db = testutil::small_quest_db();
  std::stringstream stream;
  write_binary(db, stream);
  const HorizontalDatabase copy = read_binary(stream);

  EclatConfig config;
  config.minsup = 5;
  EXPECT_TRUE(same_itemsets(eclat_sequential(db, config),
                            eclat_sequential(copy, config)));
}

TEST(Integration, DownwardClosureHoldsOnAllResults) {
  // Property: every subset of a frequent itemset is frequent with at least
  // the same support (the Apriori property the whole field rests on).
  const HorizontalDatabase db = testutil::small_quest_db(500, 30, 9);
  EclatConfig config;
  config.minsup = 5;
  const MiningResult result = eclat_sequential(db, config);
  const SupportIndex index(result);
  for (const FrequentItemset& f : result.itemsets) {
    if (f.items.size() < 2) continue;
    for (std::size_t drop = 0; drop < f.items.size(); ++drop) {
      Itemset subset;
      for (std::size_t i = 0; i < f.items.size(); ++i) {
        if (i != drop) subset.push_back(f.items[i]);
      }
      const Count subset_support = index.support(subset);
      EXPECT_GE(subset_support, f.support)
          << to_string(f.items) << " vs " << to_string(subset);
      EXPECT_GT(subset_support, 0u);
    }
  }
}

}  // namespace
}  // namespace eclat
