#include "common/types.hpp"

#include <gtest/gtest.h>

#include "common/result.hpp"

namespace eclat {
namespace {

TEST(Types, ToStringFormatsItemset) {
  EXPECT_EQ(to_string(Itemset{}), "{}");
  EXPECT_EQ(to_string(Itemset{7}), "{7}");
  EXPECT_EQ(to_string(Itemset{1, 2, 30}), "{1 2 30}");
}

TEST(Types, IsSortedItemset) {
  EXPECT_TRUE(is_sorted_itemset({}));
  EXPECT_TRUE(is_sorted_itemset({5}));
  EXPECT_TRUE(is_sorted_itemset({1, 2, 3}));
  EXPECT_FALSE(is_sorted_itemset({1, 1}));
  EXPECT_FALSE(is_sorted_itemset({2, 1}));
}

TEST(Types, IsSubset) {
  EXPECT_TRUE(is_subset({}, {1, 2}));
  EXPECT_TRUE(is_subset({2}, {1, 2, 3}));
  EXPECT_TRUE(is_subset({1, 3}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({4}, {1, 2, 3}));
  EXPECT_FALSE(is_subset({1, 4}, {1, 2, 3}));
}

TEST(Types, LexLess) {
  EXPECT_TRUE(lex_less({1}, {2}));
  EXPECT_TRUE(lex_less({1}, {1, 2}));
  EXPECT_TRUE(lex_less({1, 2}, {1, 3}));
  EXPECT_FALSE(lex_less({2}, {1, 5}));
  EXPECT_FALSE(lex_less({1, 2}, {1, 2}));
}

TEST(Result, AbsoluteSupportCeilsAndFloorsAtOne) {
  EXPECT_EQ(absolute_support(0.001, 100000), 100u);
  EXPECT_EQ(absolute_support(0.001, 100), 1u);
  EXPECT_EQ(absolute_support(0.0015, 1000), 2u);  // ceil(1.5)
  EXPECT_EQ(absolute_support(0.0, 1000), 1u);     // never zero
}

TEST(Result, NormalizeOrdersBySizeThenLex) {
  MiningResult result;
  result.itemsets = {
      {{2, 3}, 5}, {{1}, 9}, {{1, 2, 3}, 2}, {{1, 4}, 4}, {{0}, 7}};
  normalize(result);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
  EXPECT_EQ(result.itemsets[1].items, (Itemset{1}));
  EXPECT_EQ(result.itemsets[2].items, (Itemset{1, 4}));
  EXPECT_EQ(result.itemsets[3].items, (Itemset{2, 3}));
  EXPECT_EQ(result.itemsets[4].items, (Itemset{1, 2, 3}));
}

TEST(Result, CountOfSizeAndMaxSize) {
  MiningResult result;
  result.itemsets = {{{1}, 1}, {{2}, 1}, {{1, 2}, 1}, {{1, 2, 3}, 1}};
  EXPECT_EQ(result.count_of_size(1), 2u);
  EXPECT_EQ(result.count_of_size(2), 1u);
  EXPECT_EQ(result.count_of_size(3), 1u);
  EXPECT_EQ(result.count_of_size(4), 0u);
  EXPECT_EQ(result.max_size(), 3u);
}

}  // namespace
}  // namespace eclat
