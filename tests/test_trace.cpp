#include "mc/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "mc/cluster.hpp"
#include "parallel/par_eclat.hpp"
#include "test_util.hpp"

namespace eclat::mc {
namespace {

TEST(Trace, RecordsAndSortsByTime) {
  Trace trace;
  trace.record(1, 2.0, TraceKind::kDisk, "scan", 100);
  trace.record(0, 1.0, TraceKind::kCompute, "compute", 500);
  trace.record(0, 2.0, TraceKind::kBarrier, "barrier");
  const auto events = trace.sorted();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].time, 1.0);
  EXPECT_EQ(events[1].processor, 0u);  // equal times: processor order
  EXPECT_EQ(events[2].processor, 1u);
}

TEST(Trace, PhaseSpanSumsMatchedPairs) {
  Trace trace;
  trace.record(0, 1.0, TraceKind::kPhaseBegin, "work");
  trace.record(0, 3.0, TraceKind::kPhaseEnd, "work");
  trace.record(1, 0.0, TraceKind::kPhaseBegin, "work");
  trace.record(1, 1.5, TraceKind::kPhaseEnd, "work");
  trace.record(0, 5.0, TraceKind::kPhaseBegin, "work");
  trace.record(0, 6.0, TraceKind::kPhaseEnd, "work");
  // p0: (3-1) + (6-5) = 3; p1: 1.5 -> max = 3.
  EXPECT_DOUBLE_EQ(trace.phase_span("work"), 3.0);
  EXPECT_DOUBLE_EQ(trace.phase_span("absent"), 0.0);
}

TEST(Trace, DumpFormats) {
  Trace trace;
  trace.record(2, 0.5, TraceKind::kMessage, "tidlists", 4096);
  std::ostringstream text;
  trace.dump(text);
  EXPECT_NE(text.str().find("p2"), std::string::npos);
  EXPECT_NE(text.str().find("message"), std::string::npos);
  EXPECT_NE(text.str().find("4096"), std::string::npos);

  std::ostringstream csv;
  trace.dump_csv(csv);
  EXPECT_NE(csv.str().find("processor,time,kind,label,detail"),
            std::string::npos);
  EXPECT_NE(csv.str().find("2,0.5,message,tidlists,4096"),
            std::string::npos);
}

TEST(Trace, ClearResets) {
  Trace trace;
  trace.record(0, 0.0, TraceKind::kMark, "x");
  EXPECT_EQ(trace.size(), 1u);
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
}

TEST(Trace, ClusterEventsAreRecorded) {
  Trace trace;
  Cluster cluster(Topology{2, 2});
  cluster.set_trace(&trace);
  cluster.run([](Processor& self) {
    self.phase_begin("demo");
    self.disk_read(1000);
    self.compute([] {
      volatile int sink = 0;
      for (int i = 0; i < 1000; ++i) sink = sink + i;
    });
    self.barrier();
    self.mark("checkpoint", 7);
    self.phase_end("demo");
  });
  const auto events = trace.sorted();
  EXPECT_GE(events.size(), 4u * 5u);  // 5 events per processor minimum
  // Timestamps never decrease per processor.
  std::vector<double> last(4, -1.0);
  for (const TraceEvent& event : events) {
    EXPECT_GE(event.time, last[event.processor]);
    last[event.processor] = event.time;
  }
  EXPECT_GT(trace.phase_span("demo"), 0.0);
}

TEST(Trace, ParEclatEmitsAllFourPhases) {
  const HorizontalDatabase db = testutil::small_quest_db();
  Trace trace;
  Cluster cluster(Topology{2, 2});
  cluster.set_trace(&trace);
  par::ParEclatConfig config;
  config.minsup = 5;
  const par::ParallelOutput output = par::par_eclat(cluster, db, config);

  for (const char* phase : {"initialization", "transformation",
                            "asynchronous", "reduction"}) {
    EXPECT_GT(trace.phase_span(phase), 0.0) << phase;
  }
  // The traced spans must agree with the reported phase durations within
  // reason (phase_seconds uses max end-times, the trace per-proc spans).
  EXPECT_LE(trace.phase_span("asynchronous"),
            output.total_seconds + 1e-9);
}

TEST(Trace, DetachedClusterRecordsNothing) {
  Trace trace;
  Cluster cluster(Topology{1, 2});
  cluster.set_trace(&trace);
  cluster.set_trace(nullptr);
  cluster.run([](Processor& self) {
    self.disk_read(100);
    self.barrier();
  });
  EXPECT_EQ(trace.size(), 0u);
}

}  // namespace
}  // namespace eclat::mc
