// Lease-based straggler detection end to end: the LeaseBoard's
// virtual-time visibility semantics (unit level), and Parallel Eclat under
// silent hangs, hang-then-resume stragglers and persistent disk stalls —
// every schedule must terminate, produce output identical to the
// fault-free sequential reference, and replay bit-identically for one
// (plan, seed).
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "eclat/eclat_seq.hpp"
#include "mc/fault.hpp"
#include "mc/lease.hpp"
#include "mc/trace.hpp"
#include "parallel/par_eclat.hpp"
#include "test_util.hpp"

namespace eclat::par {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

constexpr Count kMinsup = 6;
constexpr double kInf = std::numeric_limits<double>::infinity();

// --- LeaseBoard unit semantics (single observer; the peer is marked done
// so view_at never waits). ---

mc::LeasePolicy unit_policy(double duration = 1.0) {
  mc::LeasePolicy policy;
  policy.lease_duration = duration;
  policy.speculation_threshold = 1.0;
  return policy;
}

TEST(LeaseBoard, LeaseExpiresAtAcquisitionPlusHorizon) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.0);
  board.acquire(0, 7, 0.0);

  mc::LeaseView early = board.view_at(0, 0.5, unit_policy());
  EXPECT_TRUE(early.expired.empty());
  EXPECT_DOUBLE_EQ(early.next_expiry, 1.0);

  mc::LeaseView late = board.view_at(0, 1.0, unit_policy());
  ASSERT_EQ(late.expired.size(), 1u);
  EXPECT_EQ(late.expired[0].task, 7u);
  EXPECT_EQ(late.expired[0].holder, 0u);
  EXPECT_DOUBLE_EQ(late.expired[0].expiry, 1.0);
  EXPECT_EQ(late.next_expiry, kInf);
}

TEST(LeaseBoard, RenewalPushesExpiryOut) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.0);
  board.acquire(0, 3, 0.0);
  board.renew_all(0, 0.6);

  mc::LeaseView mid = board.view_at(0, 1.2, unit_policy());
  EXPECT_TRUE(mid.expired.empty());
  EXPECT_DOUBLE_EQ(mid.next_expiry, 1.6);

  mc::LeaseView late = board.view_at(0, 1.6, unit_policy());
  ASSERT_EQ(late.expired.size(), 1u);
  EXPECT_DOUBLE_EQ(late.expired[0].renewed, 0.6);
}

TEST(LeaseBoard, ReleasedLeaseNeverExpires) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.0);
  board.acquire(0, 3, 0.0);
  board.release(0, 3, 0.5);
  const mc::LeaseView view = board.view_at(0, 5.0, unit_policy());
  EXPECT_TRUE(view.expired.empty());
  EXPECT_EQ(view.next_expiry, kInf);
}

TEST(LeaseBoard, CommitIsPermanentAndVisible) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.4);
  board.acquire(0, 3, 0.0);
  board.commit(1, 3, 0.4);  // the backup committed; owner lease outstanding
  const mc::LeaseView view = board.view_at(0, 2.0, unit_policy());
  EXPECT_TRUE(view.is_committed(3));
  EXPECT_FALSE(view.is_committed(4));
  // The owner's lease still expired — committed tasks are simply skipped
  // by speculators, which is what lets the owner detect the migration.
  ASSERT_EQ(view.expired.size(), 1u);
}

TEST(LeaseBoard, ClaimShadowsOnlyWhileClaimantLives) {
  mc::LeaseBoard board(2);
  board.claim(1, 9, 0.5);
  board.mark_terminal(1, 0.8);  // crashed mid-work, never declared done
  EXPECT_TRUE(board.view_at(0, 0.7, unit_policy()).is_claimed(9));
  // A claim dated at the view time by a higher id does not precede
  // (time, observer) = (0.5, 0), so it does not shadow.
  EXPECT_FALSE(board.view_at(0, 0.5, unit_policy()).is_claimed(9));
  // Once the claimant is terminal the claim stops shadowing: someone else
  // must be able to take the task over.
  EXPECT_FALSE(board.view_at(0, 1.0, unit_policy()).is_claimed(9));
}

TEST(LeaseBoard, DoneClaimantKeepsShadowingAfterTerminal) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.5);
  board.claim(1, 9, 0.5);
  EXPECT_TRUE(board.view_at(0, 1.0, unit_policy()).is_claimed(9));
  // Death after done (a partition cut or hang at the next collective)
  // publishes its terminal fact outside the window the release condition
  // can order against — done_ may have released this observer before the
  // terminal landed. The claim keeps shadowing so the view stays a pure
  // function of virtual time; the class is re-mined by the post-gather
  // recovery rounds, never by a racing backup.
  board.mark_terminal(1, 0.8);
  EXPECT_TRUE(board.view_at(0, 1.0, unit_policy()).is_claimed(9));
}

TEST(LeaseBoard, SuspectsAreTimestampedFacts) {
  mc::LeaseBoard board(2);
  board.mark_done(1, 0.0);
  board.mark_suspect(1, 0, 0.5);
  EXPECT_TRUE(board.view_at(0, 0.4, unit_policy()).suspects.empty());
  EXPECT_EQ(board.view_at(0, 0.5, unit_policy()).suspects,
            std::vector<std::size_t>{1});
}

TEST(LeaseBoard, ViewWaitsForLaggardPublication) {
  // view_at(0, T) must not answer before processor 1 has provably passed
  // T — the wait is real time, the answer is virtual time.
  mc::LeaseBoard board(2);
  board.acquire(1, 4, 0.0);
  std::thread laggard([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    board.touch(1, 6.0);
    board.mark_done(1, 6.0);
  });
  const mc::LeaseView view = board.view_at(0, 5.0, unit_policy());
  laggard.join();
  // By the time the view is answered the laggard published 6.0 > 5.0, so
  // its lease (never renewed since 0.0) is visibly expired at T=5.
  ASSERT_EQ(view.expired.size(), 1u);
  EXPECT_EQ(view.expired[0].holder, 1u);
}

TEST(LeaseBoard, SimultaneousObserversDoNotDeadlock) {
  // Two observers at the same instant: the id tie-break releases the
  // lower id first; the higher unblocks when the lower moves on.
  mc::LeaseBoard board(2);
  std::thread high([&] {
    (void)board.view_at(1, 1.0, unit_policy());
    board.mark_done(1, 1.0);
  });
  (void)board.view_at(0, 1.0, unit_policy());
  board.touch(0, 2.0);
  high.join();
}

// --- End-to-end: Parallel Eclat under hangs and stalls. ---

HorizontalDatabase test_db() { return small_quest_db(400, 30, 17); }

MiningResult reference_result(const HorizontalDatabase& db) {
  EclatConfig sequential;
  sequential.minsup = kMinsup;
  return eclat_sequential(db, sequential);
}

mc::CostModel modeled_time_only() {
  mc::CostModel cost;
  cost.cpu_scale = 0.0;
  return cost;
}

ParallelOutput run_with_plan(const HorizontalDatabase& db,
                             const mc::FaultPlan& plan, bool speculate,
                             mc::Trace* trace = nullptr,
                             const mc::Topology& topology = {2, 2},
                             double lease_duration = 0.25) {
  mc::Cluster cluster(topology, modeled_time_only());
  cluster.set_fault_plan(plan);
  if (trace != nullptr) cluster.set_trace(trace);
  ParEclatConfig config;
  config.minsup = kMinsup;
  config.lease.speculate = speculate;
  config.lease.lease_duration = lease_duration;
  return par_eclat(cluster, db, config);
}

std::size_t count_events(const mc::Trace& trace, mc::TraceKind kind,
                         const std::string& label) {
  std::size_t n = 0;
  for (const mc::TraceEvent& event : trace.sorted()) {
    if (event.kind == kind && event.label.rfind(label, 0) == 0) ++n;
  }
  return n;
}

struct HangSite {
  const char* name;
  mc::FaultEvent (*make)(std::size_t victim);
};

// A silent stop at every fault-probe site the pipeline has. Before the
// lease layer these were unrepresentable: a processor that stops without
// crashing leaves its peers blocked at the next barrier forever.
const HangSite kHangSites[] = {
    {"init-scan",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kDiskRead,
                                  "initialization");
     }},
    {"init-reduce",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kSumReduce,
                                  "initialization");
     }},
    {"transform-plan",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kCompute,
                                  "transformation");
     }},
    {"transform-exchange",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kAllToAll,
                                  "transformation");
     }},
    {"transform-commit",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kBarrier,
                                  "transformation");
     }},
    {"class-checkpointed",
     [](std::size_t v) {
       return mc::FaultPlan::hang_at_point(v, "class-checkpointed");
     }},
    {"final-gather",
     [](std::size_t v) {
       return mc::FaultPlan::hang(v, mc::FaultOp::kAllGather, "reduction");
     }},
};

TEST(Lease, HangAnyProcessorAnySiteOutputUnchanged) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  const mc::Topology topology{2, 2};

  for (const bool speculate : {true, false}) {
    for (const HangSite& site : kHangSites) {
      for (std::size_t victim = 0; victim < topology.total(); ++victim) {
        mc::FaultPlan plan;
        plan.events.push_back(site.make(victim));
        const ParallelOutput output =
            run_with_plan(db, plan, speculate, nullptr, topology);
        const std::string where = std::string(site.name) +
                                  " victim=" + std::to_string(victim) +
                                  " speculate=" + std::to_string(speculate);
        ASSERT_EQ(output.run_report.outcomes.size(), topology.total());
        EXPECT_EQ(output.run_report.outcomes[victim],
                  mc::ProcessorOutcome::kHung)
            << where;
        EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
      }
    }
  }
}

TEST(Lease, HangDuringMiningIsCoveredBySpeculationNotRecovery) {
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);

  mc::Trace trace;
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::hang_at_point(1, "class-checkpointed"));
  const ParallelOutput output = run_with_plan(db, plan, true, &trace);

  EXPECT_EQ(output.run_report.outcomes[1], mc::ProcessorOutcome::kHung);
  EXPECT_TRUE(same_itemsets(output.result, reference));
  // Survivors re-mined the hung owner's classes during the asynchronous
  // phase; the post-gather recovery round had nothing left to do.
  EXPECT_EQ(output.phase_seconds.count("recovery"), 0u);
  EXPECT_GE(count_events(trace, mc::TraceKind::kMark, "class-speculated"),
            1u);
}

TEST(Lease, HangThenResumeRacesItsBackupsHarmlessly) {
  // A bounded hang (20x the lease duration) at the first checkpoint: the
  // owner goes silent, backups take over its classes, then the owner
  // wakes and finds its remaining work migrated away. First-writer-wins
  // commits make any overlap invisible in the output.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);

  std::size_t victims_with_remaining_classes = 0;
  for (std::size_t victim = 0; victim < 4; ++victim) {
    mc::Trace trace;
    mc::FaultPlan plan;
    plan.events.push_back(
        mc::FaultPlan::hang_at_point(victim, "class-checkpointed",
                                     /*after_calls=*/0, /*duration=*/5.0));
    const ParallelOutput output = run_with_plan(db, plan, true, &trace);
    const std::string where = "victim=" + std::to_string(victim);

    // The victim resumes and finishes: nobody crashed, nobody hung.
    EXPECT_TRUE(output.run_report.all_finished()) << where;
    EXPECT_TRUE(same_itemsets(output.result, reference)) << where;
    if (count_events(trace, mc::TraceKind::kMark, "class-speculated") > 0) {
      ++victims_with_remaining_classes;
      // Work the backups committed is skipped (migrated) by the resumed
      // owner, not mined twice by it.
      EXPECT_GE(count_events(trace, mc::TraceKind::kMark, "class-migrated"),
                1u)
          << where;
    }
  }
  // The workload has enough classes that at least one victim had work
  // outstanding when it hung.
  EXPECT_GE(victims_with_remaining_classes, 1u);
}

TEST(Lease, SpeculationShortensDiskStallStragglerMakespan) {
  // The acceptance scenario: one processor's disk runs 10x slow through
  // the asynchronous phase. Without speculation the makespan is bounded
  // by the straggler; with it, idle survivors take over the straggler's
  // classes (each class carries its own stalled read, so migrating the
  // class removes the cost, not just hides it).
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);

  mc::FaultPlan plan;
  plan.events.push_back(
      mc::FaultPlan::disk_stall(2, 10.0, "asynchronous", true));

  // The lease duration must sit between a healthy inter-checkpoint gap
  // and a stalled one for the detector to see the straggler — policy is
  // workload-relative, like any failure-detector timeout.
  constexpr double kLease = 0.01;
  const ParallelOutput off = run_with_plan(db, plan, false, nullptr, {2, 2},
                                           kLease);
  const ParallelOutput on = run_with_plan(db, plan, true, nullptr, {2, 2},
                                          kLease);

  EXPECT_TRUE(off.run_report.all_finished());
  EXPECT_TRUE(on.run_report.all_finished());
  EXPECT_TRUE(same_itemsets(off.result, reference));
  EXPECT_TRUE(same_itemsets(on.result, reference));
  EXPECT_LT(on.total_seconds, off.total_seconds);
}

TEST(Lease, OutputIdenticalAcrossSpeculationOnOffAndFaultFree) {
  const HorizontalDatabase db = test_db();

  mc::FaultPlan stall;
  stall.events.push_back(
      mc::FaultPlan::disk_stall(0, 25.0, "asynchronous", true));
  mc::FaultPlan hang;
  hang.events.push_back(mc::FaultPlan::hang_at_point(3, "class-checkpointed"));

  const ParallelOutput baseline = run_with_plan(db, {}, false);
  const ParallelOutput runs[] = {
      run_with_plan(db, {}, true),     run_with_plan(db, stall, false),
      run_with_plan(db, stall, true),  run_with_plan(db, hang, false),
      run_with_plan(db, hang, true),
  };
  for (std::size_t i = 0; i < std::size(runs); ++i) {
    EXPECT_TRUE(same_itemsets(runs[i].result, baseline.result)) << i;
  }
}

TEST(Lease, SamePlanSameSeedReplaysBitIdentically) {
  const HorizontalDatabase db = test_db();
  mc::FaultPlan plan;
  plan.seed = 0xFEED;
  plan.events.push_back(
      mc::FaultPlan::hang_at_point(1, "class-checkpointed"));
  plan.events.push_back(
      mc::FaultPlan::disk_stall(3, 10.0, "asynchronous", true));

  mc::Trace trace_a, trace_b;
  const ParallelOutput a = run_with_plan(db, plan, true, &trace_a);
  const ParallelOutput b = run_with_plan(db, plan, true, &trace_b);

  EXPECT_EQ(a.total_seconds, b.total_seconds);  // bit-identical, cpu_scale=0
  EXPECT_TRUE(same_itemsets(a.result, b.result));
  EXPECT_EQ(a.run_report.outcomes, b.run_report.outcomes);
  // The speculation schedule itself — who backed up what, what migrated —
  // replays exactly, not just the final output.
  for (const char* label : {"class-speculated", "class-migrated"}) {
    EXPECT_EQ(count_events(trace_a, mc::TraceKind::kMark, label),
              count_events(trace_b, mc::TraceKind::kMark, label))
        << label;
  }
  EXPECT_EQ(count_events(trace_a, mc::TraceKind::kFault, "hang"),
            count_events(trace_b, mc::TraceKind::kFault, "hang"));
}

TEST(Lease, RetransmissionExhaustionEscalatesToSuspicion) {
  // Every copy of one link's exchange payload arrives corrupted: original
  // delivery plus all four retransmissions. The receiver must give up,
  // suspect the sender, and surface the abandoned transfer as an error —
  // not retry forever.
  const HorizontalDatabase db = test_db();
  mc::Trace trace;
  mc::FaultPlan plan;
  for (std::size_t attempt = 0; attempt <= 4; ++attempt) {
    plan.events.push_back(mc::FaultPlan::corrupt_message(1, 0, attempt));
  }
  mc::Cluster cluster(mc::Topology{2, 2}, modeled_time_only());
  cluster.set_fault_plan(plan);
  cluster.set_trace(&trace);
  ParEclatConfig config;
  config.minsup = kMinsup;
  EXPECT_THROW((void)par_eclat(cluster, db, config), std::runtime_error);
  EXPECT_EQ(cluster.last_run_report().outcomes[1],
            mc::ProcessorOutcome::kAborted);
  EXPECT_GE(count_events(trace, mc::TraceKind::kFault, "suspect"), 1u);
  EXPECT_EQ(count_events(trace, mc::TraceKind::kFault, "retransmit"), 4u);
}

TEST(Lease, BoundedRetransmissionRepairsTransientCorruption) {
  // Two corrupted copies, then a clean third: the backoff loop absorbs it
  // with no suspicion and the output is untouched.
  const HorizontalDatabase db = test_db();
  const MiningResult reference = reference_result(db);
  mc::Trace trace;
  mc::FaultPlan plan;
  plan.events.push_back(mc::FaultPlan::corrupt_message(1, 0, 0));
  plan.events.push_back(mc::FaultPlan::corrupt_message(1, 0, 1));
  const ParallelOutput output = run_with_plan(db, plan, true, &trace);
  EXPECT_TRUE(output.run_report.all_finished());
  EXPECT_TRUE(same_itemsets(output.result, reference));
  EXPECT_EQ(count_events(trace, mc::TraceKind::kFault, "retransmit"), 2u);
  EXPECT_EQ(count_events(trace, mc::TraceKind::kFault, "suspect"), 0u);
}

}  // namespace
}  // namespace eclat::par
