#include "eclat/eclat_seq.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "common/rng.hpp"
#include "eclat/compute_frequent.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::brute_force_mine;
using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(ComputeFrequent, MinesOneClassExhaustively) {
  // Class [0] with members 1, 2, 3; all tid-lists identical so every
  // superset is frequent too.
  const TidList tids = {0, 1, 2, 3, 4};
  std::vector<Atom> atoms = {
      {{0, 1}, tids}, {{0, 2}, tids}, {{0, 3}, tids}};
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 2, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  // Expected: {0,1,2}, {0,1,3}, {0,2,3}, {0,1,2,3}.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(histogram[3], 3u);
  EXPECT_EQ(histogram[4], 1u);
  for (const FrequentItemset& f : out) EXPECT_EQ(f.support, 5u);
}

TEST(ComputeFrequent, RespectsMinimumSupport) {
  std::vector<Atom> atoms = {
      {{0, 1}, {0, 1, 2}},
      {{0, 2}, {2, 3, 4}},
  };
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 2, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  EXPECT_TRUE(out.empty());  // intersection {2} has support 1 < 2
}

TEST(ComputeFrequent, SingletonClassYieldsNothing) {
  std::vector<Atom> atoms = {{{0, 1}, {0, 1, 2}}};
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 1, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  EXPECT_TRUE(out.empty());
}

TEST(ComputeFrequent, StatsTrackShortCircuits) {
  std::vector<Atom> atoms = {
      {{0, 1}, {0, 2, 4, 6}},
      {{0, 2}, {1, 3, 5, 7}},  // disjoint: must short-circuit
      {{0, 3}, {0, 2, 4, 6}},
  };
  IntersectStats stats;
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 3, IntersectKernel::kMergeShortCircuit, out,
                   histogram, &stats);
  EXPECT_GT(stats.intersections, 0u);
  EXPECT_GT(stats.short_circuited, 0u);
}

TEST(EclatSeq, HandmadeDatabaseKnownSupports) {
  EclatConfig config;
  config.minsup = 4;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  const auto find = [&](const Itemset& items) -> Count {
    for (const FrequentItemset& f : result.itemsets) {
      if (f.items == items) return f.support;
    }
    return 0;
  };
  EXPECT_EQ(find({0, 1}), 6u);
  EXPECT_EQ(find({0, 1, 2}), 4u);
  EXPECT_EQ(find({0, 3}), 4u);
}

TEST(EclatSeq, MatchesBruteForceAcrossSupports) {
  const HorizontalDatabase db = small_quest_db();
  for (Count minsup : {3u, 5u, 10u, 30u}) {
    EclatConfig config;
    config.minsup = minsup;
    const MiningResult mined = eclat_sequential(db, config);
    const MiningResult reference = brute_force_mine(db, minsup);
    EXPECT_TRUE(same_itemsets(mined, reference)) << "minsup=" << minsup;
  }
}

TEST(EclatSeq, MatchesAprioriExactly) {
  const HorizontalDatabase db = small_quest_db(500, 30, 9);
  for (Count minsup : {4u, 8u, 20u}) {
    EclatConfig eclat_config;
    eclat_config.minsup = minsup;
    AprioriConfig apriori_config;
    apriori_config.minsup = minsup;
    EXPECT_TRUE(same_itemsets(eclat_sequential(db, eclat_config),
                              apriori(db, apriori_config)))
        << "minsup=" << minsup;
  }
}

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
    IntersectKernel::kGallop, IntersectKernel::kBitset,
    IntersectKernel::kChunked, IntersectKernel::kAuto};

TEST(EclatSeq, AllKernelsAgree) {
  const HorizontalDatabase db = small_quest_db();
  EclatConfig config;
  config.minsup = 5;
  const MiningResult reference = eclat_sequential(db, config);
  for (IntersectKernel kernel : kAllKernels) {
    config.kernel = kernel;
    const MiningResult result = eclat_sequential(db, config);
    EXPECT_TRUE(same_itemsets(reference, result)) << kernel_name(kernel);
    // Beyond set equality: identical ordering and supports end to end.
    EXPECT_EQ(reference.itemsets, result.itemsets) << kernel_name(kernel);
  }
}

TEST(EclatSeq, AllKernelsAgreeWithDiffsets) {
  const HorizontalDatabase db = small_quest_db();
  EclatConfig config;
  config.minsup = 5;
  const MiningResult reference = eclat_sequential(db, config);
  for (IntersectKernel kernel : kAllKernels) {
    config.kernel = kernel;
    config.use_diffsets = true;
    const MiningResult result = eclat_sequential(db, config);
    EXPECT_EQ(reference.itemsets, result.itemsets) << kernel_name(kernel);
  }
}

// The seed's recursive formulation of Compute_Frequent (heap-allocated
// child classes, plain intersections), kept as the oracle the arena-backed
// rewrite must match *byte for byte* — same itemsets, same order, same
// supports, same histogram.
void reference_compute_frequent(const std::vector<Atom>& class_atoms,
                                Count minsup,
                                std::vector<FrequentItemset>& out,
                                std::vector<std::size_t>& size_histogram) {
  if (class_atoms.size() < 2) return;
  for (std::size_t i = 0; i + 1 < class_atoms.size(); ++i) {
    std::vector<Atom> child_class;
    for (std::size_t j = i + 1; j < class_atoms.size(); ++j) {
      TidList tids = intersect(class_atoms[i].tids, class_atoms[j].tids);
      if (tids.size() < minsup) continue;
      Atom child;
      child.items = class_atoms[i].items;
      child.items.push_back(class_atoms[j].items.back());
      child.tids = std::move(tids);
      const std::size_t size = child.items.size();
      if (size_histogram.size() <= size) size_histogram.resize(size + 1, 0);
      ++size_histogram[size];
      out.push_back(FrequentItemset{child.items, child.support()});
      child_class.push_back(std::move(child));
    }
    reference_compute_frequent(child_class, minsup, out, size_histogram);
  }
}

TEST(ComputeFrequent, ArenaOutputByteIdenticalToReferenceAcrossKernels) {
  Rng rng(2024);
  TidArena arena;  // shared across trials: reuse must not leak state
  for (int trial = 0; trial < 20; ++trial) {
    // A random class of 2..7 atoms over a universe that puts some lists
    // on each side of the density threshold.
    const std::size_t n_atoms = 2 + static_cast<std::size_t>(rng.below(6));
    const Tid universe = 64 + static_cast<Tid>(rng.below(400));
    std::vector<Atom> atoms;
    for (std::size_t m = 0; m < n_atoms; ++m) {
      TidList tids;
      const double density = 0.05 + 0.9 * rng.uniform();
      for (Tid t = 0; t < universe; ++t) {
        if (rng.uniform() < density) tids.push_back(t);
      }
      if (tids.empty()) tids.push_back(static_cast<Tid>(m));
      atoms.push_back(Atom{{7, static_cast<Item>(10 + m)}, std::move(tids)});
    }
    const Count minsup = 1 + static_cast<Count>(rng.below(universe / 4));

    std::vector<FrequentItemset> expected;
    std::vector<std::size_t> expected_histogram;
    reference_compute_frequent(atoms, minsup, expected, expected_histogram);

    for (IntersectKernel kernel : kAllKernels) {
      std::vector<FrequentItemset> found;
      std::vector<std::size_t> histogram;
      compute_frequent(atoms, minsup, kernel, arena, found, histogram);
      EXPECT_EQ(found, expected) << kernel_name(kernel);
      EXPECT_EQ(histogram, expected_histogram) << kernel_name(kernel);
    }
  }
}

TEST(EclatSeq, PaperModeSkipsSingletons) {
  EclatConfig config;
  config.minsup = 4;
  config.include_singletons = false;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  EXPECT_EQ(result.count_of_size(1), 0u);
  EXPECT_GT(result.count_of_size(2), 0u);
}

TEST(EclatSeq, TwoHorizontalScansOnly) {
  EclatConfig config;
  config.minsup = 4;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  // The paper's claim: L2 counting scan + transformation scan. (The third
  // scan of the parallel algorithm reads the *vertical* data from local
  // disk; in memory it is the mining pass itself.)
  EXPECT_EQ(result.database_scans, 2u);
}

TEST(EclatSeq, EmptyAndDegenerateDatabases) {
  EclatConfig config;
  config.minsup = 1;
  EXPECT_TRUE(eclat_sequential(HorizontalDatabase{}, config)
                  .itemsets.empty());

  // Single transaction, single item.
  std::vector<Transaction> one = {{0, {0}}};
  const HorizontalDatabase db(std::move(one), 1);
  const MiningResult result = eclat_sequential(db, config);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
}

TEST(EclatSeq, IntersectStatsPopulated) {
  IntersectStats stats;
  EclatConfig config;
  config.minsup = 4;
  eclat_sequential(handmade_db(), config, &stats);
  EXPECT_GT(stats.intersections, 0u);
  EXPECT_GT(stats.tids_scanned, 0u);
}

}  // namespace
}  // namespace eclat
