#include "eclat/eclat_seq.hpp"

#include <gtest/gtest.h>

#include "apriori/apriori.hpp"
#include "eclat/compute_frequent.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::brute_force_mine;
using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(ComputeFrequent, MinesOneClassExhaustively) {
  // Class [0] with members 1, 2, 3; all tid-lists identical so every
  // superset is frequent too.
  const TidList tids = {0, 1, 2, 3, 4};
  std::vector<Atom> atoms = {
      {{0, 1}, tids}, {{0, 2}, tids}, {{0, 3}, tids}};
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 2, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  // Expected: {0,1,2}, {0,1,3}, {0,2,3}, {0,1,2,3}.
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(histogram[3], 3u);
  EXPECT_EQ(histogram[4], 1u);
  for (const FrequentItemset& f : out) EXPECT_EQ(f.support, 5u);
}

TEST(ComputeFrequent, RespectsMinimumSupport) {
  std::vector<Atom> atoms = {
      {{0, 1}, {0, 1, 2}},
      {{0, 2}, {2, 3, 4}},
  };
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 2, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  EXPECT_TRUE(out.empty());  // intersection {2} has support 1 < 2
}

TEST(ComputeFrequent, SingletonClassYieldsNothing) {
  std::vector<Atom> atoms = {{{0, 1}, {0, 1, 2}}};
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 1, IntersectKernel::kMergeShortCircuit, out,
                   histogram);
  EXPECT_TRUE(out.empty());
}

TEST(ComputeFrequent, StatsTrackShortCircuits) {
  std::vector<Atom> atoms = {
      {{0, 1}, {0, 2, 4, 6}},
      {{0, 2}, {1, 3, 5, 7}},  // disjoint: must short-circuit
      {{0, 3}, {0, 2, 4, 6}},
  };
  IntersectStats stats;
  std::vector<FrequentItemset> out;
  std::vector<std::size_t> histogram;
  compute_frequent(atoms, 3, IntersectKernel::kMergeShortCircuit, out,
                   histogram, &stats);
  EXPECT_GT(stats.intersections, 0u);
  EXPECT_GT(stats.short_circuited, 0u);
}

TEST(EclatSeq, HandmadeDatabaseKnownSupports) {
  EclatConfig config;
  config.minsup = 4;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  const auto find = [&](const Itemset& items) -> Count {
    for (const FrequentItemset& f : result.itemsets) {
      if (f.items == items) return f.support;
    }
    return 0;
  };
  EXPECT_EQ(find({0, 1}), 6u);
  EXPECT_EQ(find({0, 1, 2}), 4u);
  EXPECT_EQ(find({0, 3}), 4u);
}

TEST(EclatSeq, MatchesBruteForceAcrossSupports) {
  const HorizontalDatabase db = small_quest_db();
  for (Count minsup : {3u, 5u, 10u, 30u}) {
    EclatConfig config;
    config.minsup = minsup;
    const MiningResult mined = eclat_sequential(db, config);
    const MiningResult reference = brute_force_mine(db, minsup);
    EXPECT_TRUE(same_itemsets(mined, reference)) << "minsup=" << minsup;
  }
}

TEST(EclatSeq, MatchesAprioriExactly) {
  const HorizontalDatabase db = small_quest_db(500, 30, 9);
  for (Count minsup : {4u, 8u, 20u}) {
    EclatConfig eclat_config;
    eclat_config.minsup = minsup;
    AprioriConfig apriori_config;
    apriori_config.minsup = minsup;
    EXPECT_TRUE(same_itemsets(eclat_sequential(db, eclat_config),
                              apriori(db, apriori_config)))
        << "minsup=" << minsup;
  }
}

TEST(EclatSeq, AllKernelsAgree) {
  const HorizontalDatabase db = small_quest_db();
  MiningResult results[3];
  const IntersectKernel kernels[] = {IntersectKernel::kMerge,
                                     IntersectKernel::kMergeShortCircuit,
                                     IntersectKernel::kGallop};
  for (int i = 0; i < 3; ++i) {
    EclatConfig config;
    config.minsup = 5;
    config.kernel = kernels[i];
    results[i] = eclat_sequential(db, config);
  }
  EXPECT_TRUE(same_itemsets(results[0], results[1]));
  EXPECT_TRUE(same_itemsets(results[0], results[2]));
}

TEST(EclatSeq, PaperModeSkipsSingletons) {
  EclatConfig config;
  config.minsup = 4;
  config.include_singletons = false;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  EXPECT_EQ(result.count_of_size(1), 0u);
  EXPECT_GT(result.count_of_size(2), 0u);
}

TEST(EclatSeq, TwoHorizontalScansOnly) {
  EclatConfig config;
  config.minsup = 4;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  // The paper's claim: L2 counting scan + transformation scan. (The third
  // scan of the parallel algorithm reads the *vertical* data from local
  // disk; in memory it is the mining pass itself.)
  EXPECT_EQ(result.database_scans, 2u);
}

TEST(EclatSeq, EmptyAndDegenerateDatabases) {
  EclatConfig config;
  config.minsup = 1;
  EXPECT_TRUE(eclat_sequential(HorizontalDatabase{}, config)
                  .itemsets.empty());

  // Single transaction, single item.
  std::vector<Transaction> one = {{0, {0}}};
  const HorizontalDatabase db(std::move(one), 1);
  const MiningResult result = eclat_sequential(db, config);
  ASSERT_EQ(result.itemsets.size(), 1u);
  EXPECT_EQ(result.itemsets[0].items, (Itemset{0}));
}

TEST(EclatSeq, IntersectStatsPopulated) {
  IntersectStats stats;
  EclatConfig config;
  config.minsup = 4;
  eclat_sequential(handmade_db(), config, &stats);
  EXPECT_GT(stats.intersections, 0u);
  EXPECT_GT(stats.tids_scanned, 0u);
}

}  // namespace
}  // namespace eclat
