#include "clique/clique_eclat.hpp"
#include "clique/item_graph.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"
#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::same_itemsets;
using testutil::small_quest_db;

std::vector<PairKey> edges(std::initializer_list<std::pair<Item, Item>> list) {
  std::vector<PairKey> keys;
  for (const auto& [a, b] : list) keys.push_back(make_pair_key(a, b));
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(ItemGraph, AdjacencyAndVertices) {
  const ItemGraph graph(edges({{0, 1}, {1, 2}, {0, 2}, {3, 4}}));
  EXPECT_TRUE(graph.adjacent(0, 1));
  EXPECT_TRUE(graph.adjacent(1, 0));
  EXPECT_TRUE(graph.adjacent(3, 4));
  EXPECT_FALSE(graph.adjacent(0, 3));
  EXPECT_FALSE(graph.adjacent(0, 0));
  EXPECT_EQ(graph.edge_count(), 4u);
  EXPECT_EQ(graph.vertices().size(), 5u);
  EXPECT_EQ(graph.neighbors(1).size(), 2u);
  EXPECT_TRUE(graph.neighbors(99).empty());
}

std::set<Itemset> collect_cliques(const ItemGraph& graph,
                                  std::span<const Item> subset) {
  std::set<Itemset> cliques;
  maximal_cliques(graph, subset, 1000,
                  [&](const Itemset& clique) { cliques.insert(clique); });
  return cliques;
}

TEST(MaximalCliques, TriangleAndEdge) {
  const ItemGraph graph(edges({{0, 1}, {1, 2}, {0, 2}, {2, 3}}));
  const std::vector<Item> all = {0, 1, 2, 3};
  const auto cliques = collect_cliques(graph, all);
  EXPECT_EQ(cliques.size(), 2u);
  EXPECT_TRUE(cliques.count({0, 1, 2}));
  EXPECT_TRUE(cliques.count({2, 3}));
}

TEST(MaximalCliques, DisconnectedVerticesAreSingletonCliques) {
  const ItemGraph graph(edges({{0, 1}}));
  const std::vector<Item> subset = {0, 1, 5};
  const auto cliques = collect_cliques(graph, subset);
  EXPECT_TRUE(cliques.count({0, 1}));
  EXPECT_TRUE(cliques.count({5}));
}

TEST(MaximalCliques, MatchesBruteForceOnRandomGraphs) {
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    constexpr Item kN = 10;
    std::vector<PairKey> random_edges;
    bool adj[kN][kN] = {};
    for (Item a = 0; a < kN; ++a) {
      for (Item b = a + 1; b < kN; ++b) {
        if (rng.uniform() < 0.4) {
          random_edges.push_back(make_pair_key(a, b));
          adj[a][b] = adj[b][a] = true;
        }
      }
    }
    std::sort(random_edges.begin(), random_edges.end());
    const ItemGraph graph(random_edges);

    // Brute force: every subset, test clique-ness and maximality.
    std::set<Itemset> expected;
    for (unsigned mask = 1; mask < (1u << kN); ++mask) {
      Itemset members;
      for (Item v = 0; v < kN; ++v) {
        if ((mask >> v) & 1) members.push_back(v);
      }
      bool is_clique = true;
      for (std::size_t i = 0; i < members.size() && is_clique; ++i) {
        for (std::size_t j = i + 1; j < members.size(); ++j) {
          if (!adj[members[i]][members[j]]) {
            is_clique = false;
            break;
          }
        }
      }
      if (!is_clique) continue;
      bool maximal = true;
      for (Item v = 0; v < kN && maximal; ++v) {
        if ((mask >> v) & 1) continue;
        bool extends = true;
        for (Item m : members) {
          if (!adj[v][m]) {
            extends = false;
            break;
          }
        }
        if (extends) maximal = false;
      }
      if (maximal) expected.insert(members);
    }

    std::vector<Item> all;
    for (Item v = 0; v < kN; ++v) all.push_back(v);
    EXPECT_EQ(collect_cliques(graph, all), expected) << "trial " << trial;
  }
}

TEST(MaximalCliques, CapAbortsEnumeration) {
  // Complete bipartite-ish blow-up: many maximal cliques.
  std::vector<PairKey> blowup;
  for (Item a = 0; a < 12; ++a) {
    for (Item b = a + 1; b < 12; ++b) {
      if ((a + b) % 2 == 1) blowup.push_back(make_pair_key(a, b));
    }
  }
  std::sort(blowup.begin(), blowup.end());
  const ItemGraph graph(blowup);
  std::vector<Item> all;
  for (Item v = 0; v < 12; ++v) all.push_back(v);
  std::size_t emitted = 0;
  const bool complete = maximal_cliques(graph, all, 3, [&](const Itemset&) {
    ++emitted;
  });
  EXPECT_FALSE(complete);
  EXPECT_EQ(emitted, 3u);
}

TEST(CliqueClasses, RefinesPrefixClasses) {
  // [0] = {1, 2, 3, 4} in the plain scheme, but {1,2} and {3,4} are
  // separate cliques: the clique classes must split it.
  const auto pairs = edges({{0, 1}, {0, 2}, {0, 3}, {0, 4},
                            {1, 2}, {3, 4}});
  const auto classes = clique_classes(pairs);
  std::size_t zero_prefixed = 0;
  for (const CliqueClass& sub : classes) {
    if (sub.prefix == 0) {
      ++zero_prefixed;
      EXPECT_LE(sub.members.size(), 2u);
    }
  }
  EXPECT_EQ(zero_prefixed, 2u);
}

TEST(CliqueEclat, MatchesPlainEclat) {
  const HorizontalDatabase db = small_quest_db(400, 30, 17);
  for (Count minsup : {4u, 6u, 12u}) {
    EclatConfig plain;
    plain.minsup = minsup;
    CliqueEclatConfig clique;
    clique.minsup = minsup;
    EXPECT_TRUE(same_itemsets(eclat_sequential(db, plain),
                              clique_eclat(db, clique)))
        << "minsup=" << minsup;
  }
}

TEST(CliqueEclat, WeightNeverExceedsPlainClasses) {
  const HorizontalDatabase db = small_quest_db(500, 25, 11);
  CliqueEclatConfig config;
  config.minsup = 10;
  CliqueEclatStats stats;
  clique_eclat(db, config, &stats);
  EXPECT_GE(stats.clique_subclasses, stats.plain_classes);
  // Refinement may duplicate work across overlapping cliques, but on
  // sparse graphs the per-class candidate weight shrinks.
  EXPECT_GT(stats.plain_weight, 0u);
}

TEST(CliqueEclat, FallbackStillCorrectOnDenseGraph) {
  // Tiny clique budget forces the fallback everywhere; the result must
  // not change.
  const HorizontalDatabase db = small_quest_db();
  CliqueEclatConfig tight;
  tight.minsup = 5;
  tight.max_cliques_per_prefix = 1;
  EclatConfig plain;
  plain.minsup = 5;
  EXPECT_TRUE(same_itemsets(clique_eclat(db, tight),
                            eclat_sequential(db, plain)));
}

}  // namespace
}  // namespace eclat
