#include "gen/quest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace eclat::gen {
namespace {

QuestConfig small_config() {
  QuestConfig config;
  config.num_transactions = 2000;
  config.avg_transaction_length = 10.0;
  config.avg_pattern_length = 4.0;
  config.num_items = 100;
  config.num_patterns = 50;
  config.seed = 7;
  return config;
}

TEST(QuestGenerator, ProducesRequestedTransactionCount) {
  const HorizontalDatabase db = QuestGenerator(small_config()).generate();
  EXPECT_EQ(db.size(), 2000u);
  EXPECT_EQ(db.num_items(), 100u);
}

TEST(QuestGenerator, TransactionsAreValidItemsets) {
  const HorizontalDatabase db = QuestGenerator(small_config()).generate();
  for (const Transaction& t : db.transactions()) {
    EXPECT_FALSE(t.items.empty());
    EXPECT_TRUE(is_sorted_itemset(t.items));
    for (Item item : t.items) EXPECT_LT(item, 100u);
  }
}

TEST(QuestGenerator, TidsAreSequential) {
  const HorizontalDatabase db = QuestGenerator(small_config()).generate();
  for (std::size_t i = 0; i < db.size(); ++i) {
    EXPECT_EQ(db[i].tid, static_cast<Tid>(i));
  }
}

TEST(QuestGenerator, AverageLengthNearTarget) {
  QuestConfig config = small_config();
  config.num_transactions = 20000;
  const HorizontalDatabase db = QuestGenerator(config).generate();
  // Corruption and the overflow rule push the realized mean below the
  // Poisson budget a bit; accept a generous band around |T| = 10.
  EXPECT_GT(db.average_transaction_length(), 6.0);
  EXPECT_LT(db.average_transaction_length(), 13.0);
}

TEST(QuestGenerator, DeterministicForSameSeed) {
  const HorizontalDatabase a = QuestGenerator(small_config()).generate();
  const HorizontalDatabase b = QuestGenerator(small_config()).generate();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(QuestGenerator, DifferentSeedsProduceDifferentData) {
  QuestConfig other = small_config();
  other.seed = 8;
  const HorizontalDatabase a = QuestGenerator(small_config()).generate();
  const HorizontalDatabase b = QuestGenerator(other).generate();
  std::size_t differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].items != b[i].items) ++differing;
  }
  EXPECT_GT(differing, a.size() / 2);
}

TEST(QuestGenerator, PatternPoolHasRequestedShape) {
  QuestGenerator generator(small_config());
  const auto& patterns = generator.patterns();
  ASSERT_EQ(patterns.size(), 50u);
  double weight_sum = 0.0;
  for (const Pattern& pattern : patterns) {
    EXPECT_FALSE(pattern.items.empty());
    EXPECT_TRUE(is_sorted_itemset(pattern.items));
    EXPECT_GE(pattern.corruption, 0.0);
    EXPECT_LE(pattern.corruption, 1.0);
    weight_sum += pattern.weight;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(QuestGenerator, PatternsShareItemsAcrossNeighbors) {
  // The correlation machinery must actually reuse items: consecutive
  // patterns should overlap noticeably more often than chance.
  QuestGenerator generator(small_config());
  const auto& patterns = generator.patterns();
  std::size_t overlapping = 0;
  for (std::size_t i = 1; i < patterns.size(); ++i) {
    std::set<Item> previous(patterns[i - 1].items.begin(),
                            patterns[i - 1].items.end());
    const bool shares =
        std::any_of(patterns[i].items.begin(), patterns[i].items.end(),
                    [&](Item item) { return previous.count(item) != 0; });
    if (shares) ++overlapping;
  }
  EXPECT_GT(overlapping, patterns.size() / 4);
}

TEST(QuestGenerator, GeneratedDataContainsFrequentPatterns) {
  // The whole point of the generator: planted patterns show up as
  // co-occurring items. Take the heaviest pattern and check that its
  // items co-occur far more often than independent items would.
  QuestConfig config = small_config();
  config.num_transactions = 10000;
  QuestGenerator generator(config);
  const HorizontalDatabase db = generator.generate();

  const auto& patterns = generator.patterns();
  const Pattern* heaviest = &patterns[0];
  for (const Pattern& pattern : patterns) {
    if (pattern.weight > heaviest->weight) heaviest = &pattern;
  }
  std::size_t cooccur = 0;
  // Use the pattern's two first items as the probe.
  if (heaviest->items.size() >= 2) {
    const Item a = heaviest->items[0];
    const Item b = heaviest->items[1];
    for (const Transaction& t : db.transactions()) {
      if (std::binary_search(t.items.begin(), t.items.end(), a) &&
          std::binary_search(t.items.begin(), t.items.end(), b)) {
        ++cooccur;
      }
    }
    // Independence would give roughly |D| * (|T|/N)^2 = 10000 * 0.01 = 100.
    EXPECT_GT(cooccur, 200u);
  }
}

TEST(QuestGenerator, RejectsDegenerateConfigs) {
  QuestConfig config = small_config();
  config.num_items = 0;
  EXPECT_THROW(QuestGenerator{config}, std::invalid_argument);
  config = small_config();
  config.num_patterns = 0;
  EXPECT_THROW(QuestGenerator{config}, std::invalid_argument);
  config = small_config();
  config.avg_pattern_length = 0.5;
  EXPECT_THROW(QuestGenerator{config}, std::invalid_argument);
}

TEST(QuestGenerator, DatabaseNameMatchesPaperConvention) {
  QuestConfig config;
  config.avg_transaction_length = 10;
  config.avg_pattern_length = 6;
  config.num_transactions = 800'000;
  EXPECT_EQ(database_name(config), "T10.I6.D800K");
  config.num_transactions = 6'400'000;
  EXPECT_EQ(database_name(config), "T10.I6.D6400K");
  config.num_transactions = 2'000'000;
  EXPECT_EQ(database_name(config), "T10.I6.D2M");
  config.num_transactions = 123;
  EXPECT_EQ(database_name(config), "T10.I6.D123");
}

TEST(QuestGenerator, T10I6HelperUsesPaperParameters) {
  const HorizontalDatabase db = t10_i6(1000);
  EXPECT_EQ(db.size(), 1000u);
  EXPECT_EQ(db.num_items(), 1000u);
}

}  // namespace
}  // namespace eclat::gen
