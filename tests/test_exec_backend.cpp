// Differential tests for the execution-backend seam: the native thread
// backend must emit byte-identical results to the mc simulator backend
// and to the sequential oracle — across every intersect kernel, a minsup
// grid, every worker count, both class schedulers, and a steal-heavy
// skewed workload. This is the determinism contract of DESIGN.md §9 as
// an executable spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/mining.hpp"
#include "data/result_io.hpp"
#include "eclat/eclat_seq.hpp"
#include "exec/backend.hpp"
#include "exec/mc_backend.hpp"
#include "exec/thread_backend.hpp"
#include "test_util.hpp"
#include "vertical/simd/dispatch.hpp"

namespace {

using namespace eclat;
using testutil::same_itemsets;
using testutil::small_quest_db;

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
    IntersectKernel::kGallop, IntersectKernel::kBitset,
    IntersectKernel::kChunked, IntersectKernel::kAuto};

par::ParallelOutput run_threads(const HorizontalDatabase& db,
                                const par::ParEclatConfig& config,
                                std::size_t threads,
                                exec::ClassScheduler scheduler) {
  exec::ThreadBackendOptions options;
  options.threads = threads;
  options.scheduler = scheduler;
  exec::ThreadBackend backend(options);
  return backend.mine(db, config);
}

par::ParallelOutput run_mc(const HorizontalDatabase& db,
                           const par::ParEclatConfig& config,
                           const mc::Topology& topology) {
  exec::McBackend backend(topology, mc::CostModel{});
  return backend.mine(db, config);
}

/// Deliberately skewed database: a dense overlapping core on items 0..11
/// concentrates almost all C(s,2) mining weight in the first few
/// equivalence classes, so under the static greedy schedule one worker
/// owns nearly everything and the others must steal to help.
HorizontalDatabase skewed_db() {
  std::vector<Transaction> transactions;
  for (Tid t = 0; t < 600; ++t) {
    Itemset items;
    for (Item i = 0; i < 12; ++i) {
      if ((t + i) % 3 != 0) items.push_back(i);
    }
    items.push_back(static_cast<Item>(12 + t % 6));
    transactions.push_back({t, std::move(items)});
  }
  return HorizontalDatabase(std::move(transactions), 18);
}

TEST(ExecBackend, ThreadsMatchesMcAndOracleAcrossKernelsAndMinsup) {
  const HorizontalDatabase db = small_quest_db(400, 30, 7);
  for (IntersectKernel kernel : kAllKernels) {
    for (Count minsup : {Count{2}, Count{4}, Count{8}, Count{16}}) {
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.kernel = kernel;

      EclatConfig seq_config;
      seq_config.minsup = minsup;
      seq_config.kernel = kernel;
      const MiningResult oracle = eclat_sequential(db, seq_config);

      const par::ParallelOutput mc_run = run_mc(db, config, {1, 4});
      const par::ParallelOutput threads_run =
          run_threads(db, config, 3, exec::ClassScheduler::kWorkStealing);

      const std::string label = "kernel=" + std::string(kernel_name(kernel)) +
                                " minsup=" + std::to_string(minsup);
      EXPECT_EQ(result_to_bytes(threads_run.result),
                result_to_bytes(mc_run.result))
          << label << ": threads diverged from mc";
      EXPECT_TRUE(same_itemsets(threads_run.result, oracle))
          << label << ": threads diverged from the sequential oracle";
    }
  }
}

TEST(ExecBackend, ByteIdenticalAcrossThreadCountsAndSchedulers) {
  const HorizontalDatabase db = small_quest_db(350, 28, 11);
  par::ParEclatConfig config;
  config.minsup = 5;

  const std::vector<std::uint8_t> reference =
      result_to_bytes(run_mc(db, config, {2, 2}).result);
  for (std::size_t threads : {1u, 2u, 3u, 4u, 5u}) {
    for (exec::ClassScheduler scheduler :
         {exec::ClassScheduler::kStatic, exec::ClassScheduler::kWorkStealing}) {
      const par::ParallelOutput run =
          run_threads(db, config, threads, scheduler);
      EXPECT_EQ(result_to_bytes(run.result), reference)
          << "threads=" << threads
          << " scheduler=" << exec::to_string(scheduler);
      EXPECT_EQ(run.exec_threads, threads);
      EXPECT_EQ(run.backend, "threads");
    }
  }
}

TEST(ExecBackend, StealHeavySkewStaysIdentical) {
  const HorizontalDatabase db = skewed_db();
  par::ParEclatConfig config;
  config.minsup = 100;

  const std::vector<std::uint8_t> reference =
      result_to_bytes(run_mc(db, config, {1, 4}).result);
  ASSERT_FALSE(result_from_bytes(reference).itemsets.empty());

  const par::ParallelOutput stolen =
      run_threads(db, config, 4, exec::ClassScheduler::kWorkStealing);
  const par::ParallelOutput pinned =
      run_threads(db, config, 4, exec::ClassScheduler::kStatic);
  EXPECT_EQ(result_to_bytes(stolen.result), reference);
  EXPECT_EQ(result_to_bytes(pinned.result), reference);
}

TEST(ExecBackend, PhaseAccountingAndRunReport) {
  const HorizontalDatabase db = small_quest_db();
  par::ParEclatConfig config;
  config.minsup = 4;
  const par::ParallelOutput run =
      run_threads(db, config, 2, exec::ClassScheduler::kWorkStealing);

  EXPECT_TRUE(run.run_report.all_finished());
  EXPECT_EQ(run.run_report.outcomes.size(), 2u);
  EXPECT_EQ(run.result.database_scans, 3u);
  EXPECT_GT(run.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(run.total_seconds, run.wall_seconds);
  for (const char* phase : {"initialization", "transformation",
                            "asynchronous", "reduction"}) {
    EXPECT_TRUE(run.phase_seconds.count(phase)) << phase;
  }
}

TEST(ExecBackend, ZeroThreadsResolvesToHardwareConcurrency) {
  const std::size_t resolved = exec::resolve_threads(0);
  EXPECT_GE(resolved, 1u);
  exec::ThreadBackend backend(exec::ThreadBackendOptions{});
  EXPECT_EQ(backend.workers(), resolved);

  const HorizontalDatabase db = testutil::handmade_db();
  par::ParEclatConfig config;
  config.minsup = 3;
  const par::ParallelOutput run = backend.mine(db, config);
  EXPECT_EQ(run.exec_threads, resolved);  // resolved value echoed
}

TEST(ExecBackend, McBackendEchoesBackendFields) {
  const HorizontalDatabase db = testutil::handmade_db();
  par::ParEclatConfig config;
  config.minsup = 3;
  const par::ParallelOutput run = run_mc(db, config, {2, 2});
  EXPECT_EQ(run.backend, "mc");
  EXPECT_EQ(run.exec_threads, 4u);
  EXPECT_GT(run.wall_seconds, 0.0);
  EXPECT_GT(run.total_seconds, 0.0);  // virtual makespan, not wall
}

TEST(ExecBackend, ParseHelpersRejectUnknownNamesActionably) {
  EXPECT_EQ(exec::parse_backend("mc"), exec::BackendKind::kMc);
  EXPECT_EQ(exec::parse_backend("threads"), exec::BackendKind::kThreads);
  EXPECT_EQ(exec::parse_scheduler("static"), exec::ClassScheduler::kStatic);
  EXPECT_EQ(exec::parse_scheduler("steal"),
            exec::ClassScheduler::kWorkStealing);
  try {
    exec::parse_backend("gpu");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'gpu'"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("threads"), std::string::npos);
  }
  EXPECT_THROW(exec::parse_scheduler("lifo"), std::invalid_argument);
  try {
    exec::parse_scheduler("fifo");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'static'"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("'steal'"), std::string::npos)
        << e.what();
  }
  // Case and whitespace are not forgiven: flag spellings are exact.
  EXPECT_THROW(exec::parse_backend("Threads"), std::invalid_argument);
  EXPECT_THROW(exec::parse_backend(" mc"), std::invalid_argument);
  EXPECT_THROW(exec::parse_backend(""), std::invalid_argument);
}

TEST(ExecBackend, ResolveThreadsPassesThroughAndClampsToOne) {
  EXPECT_EQ(exec::resolve_threads(1), 1u);
  EXPECT_EQ(exec::resolve_threads(5), 5u);
  EXPECT_EQ(exec::resolve_threads(64), 64u);
  EXPECT_GE(exec::resolve_threads(0), 1u);  // even if hw probing fails
}

TEST(ExecBackend, ScalarPinnedThreadsRunStaysByteIdentical) {
  // The ECLAT_FORCE_SCALAR=1 contract as an in-process test: pinning the
  // scalar kernel table (the same table the env var pins) must not change
  // a single byte of the threads-backend output relative to the full-ISA
  // run and the mc reference. CI also runs the whole suite under the env
  // var itself.
  const HorizontalDatabase db = small_quest_db(300, 24, 19);
  par::ParEclatConfig config;
  config.minsup = 4;
  config.kernel = IntersectKernel::kAuto;  // widest SIMD surface

  const std::vector<std::uint8_t> reference =
      result_to_bytes(run_mc(db, config, {1, 3}).result);
  const std::vector<std::uint8_t> full_isa = result_to_bytes(
      run_threads(db, config, 3, exec::ClassScheduler::kWorkStealing)
          .result);
  EXPECT_EQ(full_isa, reference);

  simd::override_isa_level(simd::IsaLevel::kScalar);
  const std::vector<std::uint8_t> scalar = result_to_bytes(
      run_threads(db, config, 3, exec::ClassScheduler::kWorkStealing)
          .result);
  simd::override_isa_level(std::nullopt);
  EXPECT_EQ(scalar, reference)
      << "scalar-pinned threads run diverged from the mc reference";
}

TEST(ExecBackend, ApiDispatchesParEclatToThreads) {
  const HorizontalDatabase db = small_quest_db();
  api::MineOptions mc_options;
  mc_options.algorithm = api::Algorithm::kParEclat;
  mc_options.min_support = 0.02;
  mc_options.topology = {1, 2};

  api::MineOptions thread_options = mc_options;
  thread_options.backend = exec::BackendKind::kThreads;
  thread_options.exec_threads = 2;

  const par::ParallelOutput mc_run = api::mine_with_stats(db, mc_options);
  const par::ParallelOutput threads_run =
      api::mine_with_stats(db, thread_options);
  EXPECT_EQ(result_to_bytes(threads_run.result),
            result_to_bytes(mc_run.result));
  EXPECT_EQ(threads_run.backend, "threads");
  EXPECT_EQ(mc_run.backend, "mc");
}

TEST(ExecBackend, ApiRejectsThreadsForSimulatorOnlyAlgorithms) {
  const HorizontalDatabase db = testutil::handmade_db();
  for (api::Algorithm algorithm :
       {api::Algorithm::kHybridEclat, api::Algorithm::kCountDistribution}) {
    api::MineOptions options;
    options.algorithm = algorithm;
    options.backend = exec::BackendKind::kThreads;
    try {
      api::mine_with_stats(db, options);
      FAIL() << "expected invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--backend=mc"),
                std::string::npos)
          << e.what();
    }
  }
}

}  // namespace
