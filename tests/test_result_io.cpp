#include "data/result_io.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

MiningResult sample_result() {
  EclatConfig config;
  config.minsup = 5;
  return eclat_sequential(testutil::small_quest_db(), config);
}

TEST(ResultIo, BinaryRoundTrip) {
  const MiningResult original = sample_result();
  std::stringstream stream;
  write_result(original, stream);
  const MiningResult copy = read_result(stream);
  ASSERT_EQ(copy.itemsets.size(), original.itemsets.size());
  for (std::size_t i = 0; i < original.itemsets.size(); ++i) {
    EXPECT_EQ(copy.itemsets[i], original.itemsets[i]);
  }
  EXPECT_EQ(copy.max_size(), original.max_size());
}

TEST(ResultIo, TextRoundTrip) {
  const MiningResult original = sample_result();
  std::stringstream stream;
  write_result_text(original, stream);
  const MiningResult copy = read_result_text(stream);
  ASSERT_EQ(copy.itemsets.size(), original.itemsets.size());
  for (std::size_t i = 0; i < original.itemsets.size(); ++i) {
    EXPECT_EQ(copy.itemsets[i], original.itemsets[i]);
  }
}

TEST(ResultIo, TextFormatIsSpmfStyle) {
  MiningResult result;
  result.itemsets = {{{1, 5, 9}, 42}};
  std::stringstream stream;
  write_result_text(result, stream);
  EXPECT_EQ(stream.str(), "1 5 9 #SUP: 42\n");
}

TEST(ResultIo, BinaryRejectsGarbage) {
  std::stringstream garbage("nope");
  EXPECT_THROW(read_result(garbage), std::runtime_error);
}

TEST(ResultIo, BinaryRejectsTruncation) {
  const MiningResult original = sample_result();
  std::stringstream stream;
  write_result(original, stream);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  EXPECT_THROW(read_result(truncated), std::runtime_error);
}

TEST(ResultIo, BinaryRejectsCorruptItemsets) {
  // Hand-craft a file with an unsorted itemset.
  std::stringstream stream;
  stream.write("ECLATRES", 8);
  const std::uint64_t count = 1;
  stream.write(reinterpret_cast<const char*>(&count), 8);
  const std::uint32_t length = 2;
  stream.write(reinterpret_cast<const char*>(&length), 4);
  const Item items[2] = {9, 3};  // unsorted
  stream.write(reinterpret_cast<const char*>(items), 8);
  const Count support = 1;
  stream.write(reinterpret_cast<const char*>(&support), 8);
  EXPECT_THROW(read_result(stream), std::runtime_error);
}

TEST(ResultIo, TextRejectsMissingMarker) {
  std::stringstream stream("1 2 3\n");
  EXPECT_THROW(read_result_text(stream), std::runtime_error);
}

TEST(ResultIo, TextRejectsBadSupport) {
  std::stringstream stream("1 2 #SUP: banana\n");
  EXPECT_THROW(read_result_text(stream), std::runtime_error);
}

TEST(ResultIo, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "eclat_result_io.bin")
          .string();
  const MiningResult original = sample_result();
  write_result_file(original, path);
  const MiningResult copy = read_result_file(path);
  EXPECT_EQ(copy.itemsets.size(), original.itemsets.size());
  std::filesystem::remove(path);
}

TEST(ResultIo, EmptyResultRoundTrips) {
  MiningResult empty;
  std::stringstream stream;
  write_result(empty, stream);
  EXPECT_TRUE(read_result(stream).itemsets.empty());
}

}  // namespace
}  // namespace eclat
