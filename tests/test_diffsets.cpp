#include "eclat/diffsets.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "eclat/eclat_seq.hpp"
#include "test_util.hpp"

namespace eclat {
namespace {

using testutil::brute_force_mine;
using testutil::handmade_db;
using testutil::same_itemsets;
using testutil::small_quest_db;

TEST(DifferenceBounded, ExactWhenUnderBudget) {
  const TidList a = {1, 2, 3, 5, 9};
  const TidList b = {2, 5};
  const auto diff = difference_bounded(a, b, 3);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(*diff, (TidList{1, 3, 9}));
}

TEST(DifferenceBounded, NulloptWhenOverBudget) {
  const TidList a = {1, 2, 3, 5, 9};
  const TidList b = {2, 5};
  EXPECT_FALSE(difference_bounded(a, b, 2).has_value());
}

TEST(DifferenceBounded, BudgetExactlyMet) {
  const TidList a = {1, 2, 3};
  const TidList b = {2};
  const auto diff = difference_bounded(a, b, 2);
  ASSERT_TRUE(diff.has_value());
  EXPECT_EQ(diff->size(), 2u);
}

TEST(DifferenceBounded, ZeroBudgetRequiresSubset) {
  EXPECT_TRUE(difference_bounded(TidList{1, 2}, TidList{1, 2, 3}, 0)
                  .has_value());
  EXPECT_FALSE(difference_bounded(TidList{1, 4}, TidList{1, 2, 3}, 0)
                   .has_value());
}

TEST(DifferenceBounded, AgreesWithPlainDifference) {
  Rng rng(808);
  for (int trial = 0; trial < 60; ++trial) {
    TidList a;
    TidList b;
    for (Tid t = 0; t < 300; ++t) {
      if (rng.uniform() < 0.4) a.push_back(t);
      if (rng.uniform() < 0.6) b.push_back(t);
    }
    const TidList exact = difference(a, b);
    const auto bounded = difference_bounded(a, b, exact.size());
    ASSERT_TRUE(bounded.has_value());
    EXPECT_EQ(*bounded, exact);
    if (!exact.empty()) {
      EXPECT_FALSE(difference_bounded(a, b, exact.size() - 1).has_value());
    }
  }
}

TEST(ComputeFrequentDiffsets, MatchesTidsetRecursionOnOneClass) {
  const TidList tids = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<Atom> atoms = {
      {{0, 1}, {0, 1, 2, 3, 4, 5}},
      {{0, 2}, {0, 1, 2, 3, 6}},
      {{0, 3}, {1, 2, 3, 4, 5, 6}},
      {{0, 4}, {0, 2, 3, 5}},
  };
  for (Count minsup : {1u, 2u, 3u, 4u}) {
    std::vector<FrequentItemset> tidset_out;
    std::vector<std::size_t> h1;
    compute_frequent(atoms, minsup, IntersectKernel::kMergeShortCircuit,
                     tidset_out, h1);

    std::vector<FrequentItemset> diffset_out;
    std::vector<std::size_t> h2;
    compute_frequent_diffsets(atoms, minsup, diffset_out, h2);

    auto by_items = [](const FrequentItemset& a, const FrequentItemset& b) {
      return lex_less(a.items, b.items);
    };
    std::sort(tidset_out.begin(), tidset_out.end(), by_items);
    std::sort(diffset_out.begin(), diffset_out.end(), by_items);
    EXPECT_EQ(tidset_out, diffset_out) << "minsup=" << minsup;
  }
}

TEST(EclatDiffsets, MatchesTidsetEclatOnGeneratedData) {
  const HorizontalDatabase db = small_quest_db(500, 30, 9);
  for (Count minsup : {4u, 8u, 20u}) {
    EclatConfig tidset_config;
    tidset_config.minsup = minsup;
    EclatConfig diffset_config;
    diffset_config.minsup = minsup;
    diffset_config.use_diffsets = true;
    EXPECT_TRUE(same_itemsets(eclat_sequential(db, tidset_config),
                              eclat_sequential(db, diffset_config)))
        << "minsup=" << minsup;
  }
}

TEST(EclatDiffsets, MatchesBruteForce) {
  const HorizontalDatabase db = small_quest_db();
  EclatConfig config;
  config.minsup = 5;
  config.use_diffsets = true;
  EXPECT_TRUE(same_itemsets(eclat_sequential(db, config),
                            brute_force_mine(db, 5)));
}

TEST(EclatDiffsets, DiffsetsScanFewerTidsOnDenseData) {
  // Dense co-occurrence (low support): diffsets are much smaller than the
  // tidsets they replace — the dEclat claim.
  const HorizontalDatabase db = small_quest_db(600, 20, 3);
  EclatConfig tidset_config;
  tidset_config.minsup = 3;
  tidset_config.kernel = IntersectKernel::kMerge;  // no early exits
  IntersectStats tidset_stats;
  eclat_sequential(db, tidset_config, &tidset_stats);

  EclatConfig diffset_config;
  diffset_config.minsup = 3;
  diffset_config.use_diffsets = true;
  IntersectStats diffset_stats;
  eclat_sequential(db, diffset_config, &diffset_stats);

  EXPECT_LT(diffset_stats.tids_scanned, tidset_stats.tids_scanned);
}

TEST(EclatDiffsets, HandmadeSupportsExact) {
  EclatConfig config;
  config.minsup = 4;
  config.use_diffsets = true;
  const MiningResult result = eclat_sequential(handmade_db(), config);
  const auto find = [&](const Itemset& items) -> Count {
    for (const FrequentItemset& f : result.itemsets) {
      if (f.items == items) return f.support;
    }
    return 0;
  };
  EXPECT_EQ(find({0, 1, 2}), 4u);
  EXPECT_EQ(find({0, 1}), 6u);
}

}  // namespace
}  // namespace eclat
