// Property tests for the virtual-time cost model: the simulation's
// claims (who pays what, and how costs move with inputs) must hold for
// every reasonable parameterization, not just the defaults.
#include <gtest/gtest.h>

#include "mc/cost_model.hpp"
#include "mc/topology.hpp"

namespace eclat::mc {
namespace {

class CostModelSweep : public ::testing::TestWithParam<double> {
 protected:
  CostModel model() const {
    CostModel cost;
    cost.link_bandwidth = 10.0e6 * GetParam();
    cost.aggregate_bandwidth = 11.0e6 * GetParam();
    cost.disk_bandwidth = 4.0e6 * GetParam();
    return cost;
  }
};

TEST_P(CostModelSweep, MessageTimeMonotoneInBytes) {
  const CostModel cost = model();
  double previous = 0.0;
  for (std::size_t bytes : {0u, 1u, 100u, 10000u, 1000000u}) {
    const double time = cost.message_time(bytes);
    EXPECT_GE(time, previous);
    EXPECT_GE(time, cost.mc_latency);  // latency is the floor
    previous = time;
  }
}

TEST_P(CostModelSweep, WriteDoublingExactlyDoublesTransfer) {
  CostModel doubled = model();
  doubled.write_doubling = true;
  CostModel single = model();
  single.write_doubling = false;
  const std::size_t bytes = 123456;
  EXPECT_NEAR(doubled.message_time(bytes) - doubled.mc_latency,
              2.0 * (single.message_time(bytes) - single.mc_latency),
              1e-12);
}

TEST_P(CostModelSweep, BarrierTimeMonotoneInParticipants) {
  const CostModel cost = model();
  double previous = -1.0;
  for (std::size_t total : {1u, 2u, 3u, 4u, 8u, 16u, 32u, 33u}) {
    const double time = cost.barrier_time(total);
    EXPECT_GE(time, previous);
    previous = time;
  }
}

TEST_P(CostModelSweep, DiskTimeMonotoneInBytesAndScanners) {
  const CostModel cost = model();
  EXPECT_LT(cost.disk_time(1000, 1), cost.disk_time(100000, 1));
  for (std::size_t scanners = 1; scanners < 8; ++scanners) {
    EXPECT_LE(cost.disk_time(50000, scanners),
              cost.disk_time(50000, scanners + 1));
  }
}

TEST_P(CostModelSweep, ContentionAboveOneDegradesAggregateThroughput) {
  CostModel cost = model();
  cost.disk_contention = 1.5;
  // Aggregate time for n scanners each reading B bytes, vs one scanner
  // reading n*B: with contention > 1 the split is strictly worse.
  const std::size_t bytes = 600000;
  for (std::size_t n : {2u, 4u, 8u}) {
    const double split = cost.disk_time(bytes / n, n);
    const double solo = cost.disk_time(bytes, 1);
    EXPECT_GT(split, solo / static_cast<double>(n));
  }
}

TEST_P(CostModelSweep, MemcpyCheaperThanNetwork) {
  const CostModel cost = model();
  const std::size_t bytes = 1 << 20;
  EXPECT_LT(cost.memcpy_time(bytes), cost.message_time(bytes));
}

INSTANTIATE_TEST_SUITE_P(Scales, CostModelSweep,
                         ::testing::Values(0.25, 1.0, 4.0));

TEST(TopologySweep, HostMappingIsPartition) {
  for (std::size_t hosts : {1u, 2u, 3u, 8u}) {
    for (std::size_t procs : {1u, 2u, 4u, 5u}) {
      const Topology topology{hosts, procs};
      std::vector<std::size_t> per_host(hosts, 0);
      for (std::size_t p = 0; p < topology.total(); ++p) {
        const std::size_t h = topology.host_of(p);
        ASSERT_LT(h, hosts);
        ++per_host[h];
        EXPECT_EQ(topology.slot_of(p), p % procs);
      }
      for (std::size_t count : per_host) EXPECT_EQ(count, procs);
    }
  }
}

}  // namespace
}  // namespace eclat::mc
