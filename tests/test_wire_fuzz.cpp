// Deterministic fuzz harness for wire::Reader: mutated, truncated, and
// adversarial blobs must either deserialize or raise wire::Error — never
// read out of bounds (ASan-verified in the asan-ubsan preset) and never
// allocate unbounded memory from a forged length prefix.
#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "parallel/wire.hpp"
#include "vertical/vertical_db.hpp"

namespace eclat::wire {
namespace {

// Mirror of the par_eclat transformation-phase payload: a sequence of
// (PairKey, tid-vector) records, drained until the blob is exhausted.
void drain_pair_records(const mc::Blob& blob) {
  Reader reader(blob);
  while (!reader.done()) {
    (void)reader.get<PairKey>();
    (void)reader.get_vector<Tid>();
  }
}

// Mirror of the reduction-phase payload: a count-prefixed sequence of
// (itemset-vector, support) records.
void drain_itemset_records(const mc::Blob& blob) {
  Reader reader(blob);
  const auto count = reader.get<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    (void)reader.get_vector<Item>();
    (void)reader.get<Count>();
  }
}

mc::Blob valid_pair_blob(Rng& rng) {
  Writer writer;
  const std::size_t records = rng.below(8);
  for (std::size_t r = 0; r < records; ++r) {
    writer.put(make_pair_key(static_cast<Item>(rng.below(100)),
                             static_cast<Item>(rng.below(100))));
    std::vector<Tid> tids(rng.below(32));
    for (Tid& tid : tids) tid = static_cast<Tid>(rng.below(1 << 20));
    writer.put_vector(tids);
  }
  return writer.take();
}

mc::Blob valid_itemset_blob(Rng& rng) {
  Writer writer;
  const std::uint64_t records = rng.below(8);
  writer.put(records);
  for (std::uint64_t r = 0; r < records; ++r) {
    std::vector<Item> items(1 + rng.below(6));
    for (Item& item : items) item = static_cast<Item>(rng.below(1000));
    writer.put_vector(items);
    writer.put<Count>(rng.below(10000));
  }
  return writer.take();
}

/// Apply one of: truncation, byte flips, or a splice of random bytes.
mc::Blob mutate(mc::Blob blob, Rng& rng) {
  switch (rng.below(3)) {
    case 0:  // truncate
      if (!blob.empty()) blob.resize(rng.below(blob.size()));
      break;
    case 1: {  // flip up to 8 bytes
      if (blob.empty()) break;
      const std::size_t flips = 1 + rng.below(8);
      for (std::size_t f = 0; f < flips; ++f) {
        blob[rng.below(blob.size())] ^=
            static_cast<std::uint8_t>(1 + rng.below(255));
      }
      break;
    }
    default: {  // splice random garbage at a random offset
      const std::size_t at = blob.empty() ? 0 : rng.below(blob.size());
      std::vector<std::uint8_t> garbage(rng.below(24));
      for (std::uint8_t& byte : garbage) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
      blob.insert(blob.begin() + static_cast<std::ptrdiff_t>(at),
                  garbage.begin(), garbage.end());
      break;
    }
  }
  return blob;
}

template <typename Drain>
void fuzz(Drain&& drain, mc::Blob (*make_valid)(Rng&), std::uint64_t seed,
          int iterations) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    mc::Blob blob = mutate(make_valid(rng), rng);
    try {
      drain(blob);
    } catch (const Error&) {
      // Malformed input detected and rejected: exactly the contract.
    }
  }
}

TEST(WireFuzz, MutatedPairBlobsNeverReadOutOfBounds) {
  fuzz(drain_pair_records, valid_pair_blob, 0xA11CE, 4000);
}

TEST(WireFuzz, MutatedItemsetBlobsNeverReadOutOfBounds) {
  fuzz(drain_itemset_records, valid_itemset_blob, 0xB0B, 4000);
}

TEST(WireFuzz, TruncationAtEveryByteBoundary) {
  Rng rng(42);
  const mc::Blob blob = valid_pair_blob(rng);
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    mc::Blob truncated(blob.begin(),
                       blob.begin() + static_cast<std::ptrdiff_t>(cut));
    try {
      drain_pair_records(truncated);
    } catch (const Error&) {
    }
  }
}

TEST(WireFuzz, ForgedHugeCountIsRejectedNotAllocated) {
  // A forged 2^64-1 length prefix must throw, not wrap the byte math to a
  // small number (the pre-hardening bug) or attempt an 8-exabyte alloc.
  Writer writer;
  writer.put<std::uint64_t>(std::numeric_limits<std::uint64_t>::max());
  writer.put<Tid>(7);
  const mc::Blob blob = writer.take();
  Reader reader(blob);
  EXPECT_THROW((void)reader.get_vector<Tid>(), Error);
}

TEST(WireFuzz, CountOverflowingSizeComputationIsRejected) {
  // count * sizeof(Tid) == 2^64 exactly: wraps to 0 in the naive check.
  Writer writer;
  writer.put<std::uint64_t>(1ULL << 62);  // * 4 bytes/Tid == 2^64
  const mc::Blob blob = writer.take();
  Reader reader(blob);
  EXPECT_THROW((void)reader.get_vector<Tid>(), Error);
}

TEST(WireFuzz, CountJustOverRemainingIsRejected) {
  Writer writer;
  writer.put_vector(std::vector<Tid>{1, 2, 3});
  mc::Blob blob = writer.take();
  blob.resize(blob.size() - 1);  // last element now short one byte
  Reader reader(blob);
  EXPECT_THROW((void)reader.get_vector<Tid>(), Error);
}

TEST(WireFuzz, EmptyBlobUnderruns) {
  const mc::Blob blob;
  Reader reader(blob);
  EXPECT_TRUE(reader.done());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_THROW((void)reader.get<std::uint8_t>(), Error);
}

TEST(WireFuzz, ValidBlobsRoundTripUnmutated) {
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    EXPECT_NO_THROW(drain_pair_records(valid_pair_blob(rng)));
    EXPECT_NO_THROW(drain_itemset_records(valid_itemset_blob(rng)));
  }
}

// --- CRC32-checked framing: what the fault injector's message corruption
// must never get past. ---

TEST(WireFrame, SealedFrameRoundTrips) {
  Rng rng(0xF4A3E);
  for (int i = 0; i < 100; ++i) {
    const mc::Blob payload = valid_pair_blob(rng);
    const mc::Blob frame = seal_frame(payload);
    const FrameResult opened = open_frame(frame);
    ASSERT_TRUE(opened) << opened.error;
    ASSERT_EQ(opened.payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           opened.payload.begin()));
    EXPECT_NO_THROW(drain_pair_records(
        {opened.payload.begin(), opened.payload.end()}));
  }
}

TEST(WireFrame, EmptyPayloadSealsAndOpens) {
  const mc::Blob frame = seal_frame({});
  const FrameResult opened = open_frame(frame);
  ASSERT_TRUE(opened) << opened.error;
  EXPECT_TRUE(opened.payload.empty());
}

TEST(WireFrame, EverySingleBitFlipFailsTheChecksum) {
  // CRC32 detects all single-bit errors; a flipped header byte fails the
  // magic/length checks instead. Either way open_frame must say no.
  Rng rng(0xB17);
  const mc::Blob frame = seal_frame(valid_pair_blob(rng));
  for (std::size_t byte = 0; byte < frame.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mc::Blob corrupted = frame;
      corrupted[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(open_frame(corrupted))
          << "flip at byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(WireFrame, EveryTruncationFails) {
  Rng rng(0x7A11);
  const mc::Blob frame = seal_frame(valid_pair_blob(rng));
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    const mc::Blob truncated(frame.begin(),
                             frame.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(open_frame(truncated)) << "cut at " << cut;
  }
}

TEST(WireFrame, MultiByteMutationsNeverDecodeToWrongPayload) {
  // The fault injector's mutation model (random flips / truncation): an
  // opened frame must always carry the original payload — corruption is
  // either detected or (deterministically, for this seed) never silent.
  Rng rng(0x5EED);
  for (int i = 0; i < 2000; ++i) {
    const mc::Blob payload = valid_pair_blob(rng);
    mc::Blob frame = mutate(seal_frame(payload), rng);
    const FrameResult opened = open_frame(frame);
    if (!opened) continue;  // detected: the contract held
    ASSERT_EQ(opened.payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           opened.payload.begin()));
  }
}

TEST(WireFrame, ForeignBlobIsRejected) {
  Rng rng(0xDEAD);
  // An unframed payload fed to open_frame (e.g. mixing up raw and sealed
  // paths) must be rejected by the magic check, not misparsed.
  const mc::Blob raw = valid_itemset_blob(rng);
  EXPECT_FALSE(open_frame(raw));
}

TEST(WireFrame, Crc32KnownAnswer) {
  // IEEE CRC-32 of "123456789" is 0xCBF43926 — pins the polynomial and
  // reflection conventions so frames stay readable across refactors.
  const std::uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32({digits, sizeof(digits)}), 0xCBF43926u);
}

// --- Sequence-numbered frames and duplicate suppression: what keeps a
// retransmitting sender from double-delivering. ---

TEST(WireFrame, SequenceNumberRoundTripsAtTheExtremes) {
  Rng rng(0x5E9);
  const mc::Blob payload = valid_pair_blob(rng);
  for (const std::uint32_t seq :
       {0u, 1u, 0x7FFFFFFFu, 0xFFFFFFFFu}) {
    // FrameResult::payload is a span into the sealed blob — keep the
    // frame alive past the comparison.
    const mc::Blob frame = seal_frame(payload, seq);
    const FrameResult opened = open_frame(frame);
    ASSERT_TRUE(opened) << opened.error;
    EXPECT_EQ(opened.seq, seq);
    ASSERT_EQ(opened.payload.size(), payload.size());
    EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                           opened.payload.begin()));
  }
}

TEST(WireFrame, TamperedSequenceNumberFailsTheChecksum) {
  // The CRC covers seq || payload: an attacker (or bit rot) editing the
  // seq field to sneak a frame past the ReplayFilter is caught even
  // though the payload bytes are pristine.
  Rng rng(0x5EC);
  mc::Blob frame = seal_frame(valid_pair_blob(rng), /*seq=*/41);
  // The seq field is the second u32 of the header.
  for (std::size_t byte = 4; byte < 8; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      mc::Blob tampered = frame;
      tampered[byte] ^= static_cast<std::uint8_t>(1u << bit);
      EXPECT_FALSE(open_frame(tampered))
          << "seq byte " << byte << " bit " << bit << " went undetected";
    }
  }
}

TEST(ReplayFilter, DuplicateDeliveryIsDropped) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(0, 7));
  EXPECT_FALSE(filter.accept(0, 7));  // exact redelivery
  EXPECT_EQ(filter.size(), 1u);
}

TEST(ReplayFilter, SameSequenceFromDifferentSendersIsIndependent) {
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(0, 7));
  EXPECT_TRUE(filter.accept(1, 7));  // different sender, same seq
  EXPECT_TRUE(filter.accept(0, 8));  // same sender, next seq
  EXPECT_EQ(filter.size(), 3u);
}

TEST(ReplayFilter, LateRedeliveryAfterNewerTrafficIsStillDropped) {
  // Suppression is per-pair history, not a sliding window: a stale
  // retransmission arriving long after newer frames must still be
  // recognized.
  ReplayFilter filter;
  for (std::uint32_t seq = 0; seq < 100; ++seq) {
    EXPECT_TRUE(filter.accept(2, seq));
  }
  EXPECT_FALSE(filter.accept(2, 0));
  EXPECT_FALSE(filter.accept(2, 57));
  EXPECT_EQ(filter.size(), 100u);
}

TEST(ReplayFilter, SenderIdDoesNotAliasIntoSequenceBits) {
  // (src=1, seq=0) and (src=0, seq=2^32-1) must not collide however the
  // pair is packed.
  ReplayFilter filter;
  EXPECT_TRUE(filter.accept(1, 0));
  EXPECT_TRUE(filter.accept(0, 0xFFFFFFFFu));
  EXPECT_EQ(filter.size(), 2u);
}

}  // namespace
}  // namespace eclat::wire
