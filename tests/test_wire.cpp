#include "parallel/wire.hpp"

#include <gtest/gtest.h>

#include "parallel/parallel_common.hpp"
#include "vertical/vertical_db.hpp"
#include "test_util.hpp"

namespace eclat::wire {
namespace {

TEST(Wire, PodRoundTrip) {
  Writer writer;
  writer.put<std::uint32_t>(42);
  writer.put<std::uint64_t>(1ULL << 40);
  writer.put<double>(3.25);
  const mc::Blob blob = writer.take();

  Reader reader(blob);
  EXPECT_EQ(reader.get<std::uint32_t>(), 42u);
  EXPECT_EQ(reader.get<std::uint64_t>(), 1ULL << 40);
  EXPECT_DOUBLE_EQ(reader.get<double>(), 3.25);
  EXPECT_TRUE(reader.done());
}

TEST(Wire, VectorRoundTrip) {
  Writer writer;
  const std::vector<Tid> tids = {1, 5, 9, 100000};
  const std::vector<Item> empty;
  writer.put_vector(tids);
  writer.put_vector(empty);
  const mc::Blob blob = writer.take();

  Reader reader(blob);
  EXPECT_EQ(reader.get_vector<Tid>(), tids);
  EXPECT_TRUE(reader.get_vector<Item>().empty());
  EXPECT_TRUE(reader.done());
}

TEST(Wire, MixedSequenceRoundTrip) {
  Writer writer;
  writer.put<eclat::PairKey>(eclat::make_pair_key(3, 7));
  writer.put_vector(std::vector<Tid>{2, 4});
  writer.put<Count>(99);
  const mc::Blob blob = writer.take();

  Reader reader(blob);
  EXPECT_EQ(reader.get<eclat::PairKey>(), eclat::make_pair_key(3, 7));
  EXPECT_EQ(reader.get_vector<Tid>(), (std::vector<Tid>{2, 4}));
  EXPECT_EQ(reader.get<Count>(), 99u);
}

TEST(Wire, UnderrunThrows) {
  Writer writer;
  writer.put<std::uint32_t>(1);
  const mc::Blob blob = writer.take();
  Reader reader(blob);
  EXPECT_THROW(reader.get<std::uint64_t>(), std::runtime_error);
}

TEST(Wire, VectorUnderrunThrows) {
  // A length prefix promising more data than present.
  Writer writer;
  writer.put<std::uint64_t>(1000);  // claims 1000 elements
  writer.put<std::uint32_t>(7);     // delivers one
  const mc::Blob blob = writer.take();
  Reader reader(blob);
  EXPECT_THROW(reader.get_vector<std::uint32_t>(), std::runtime_error);
}

TEST(Wire, TakeResetsWriter) {
  Writer writer;
  writer.put<std::uint32_t>(5);
  EXPECT_EQ(writer.size(), 4u);
  (void)writer.take();
  EXPECT_EQ(writer.size(), 0u);
}

TEST(ParallelCommon, LocalPartitionCoversDatabase) {
  const HorizontalDatabase db = testutil::small_quest_db(100, 20, 3);
  const mc::Topology topology{2, 2};
  std::size_t covered = 0;
  Tid expected_tid = 0;
  for (std::size_t p = 0; p < topology.total(); ++p) {
    const auto span = par::local_partition(db, topology, p);
    covered += span.size();
    for (const Transaction& t : span) {
      EXPECT_EQ(t.tid, expected_tid++);  // contiguous, in order
    }
  }
  EXPECT_EQ(covered, db.size());
}

TEST(ParallelCommon, PartitionBytesMatchesByteSize) {
  const HorizontalDatabase db = testutil::small_quest_db(50, 15, 4);
  const mc::Topology topology{1, 1};
  EXPECT_EQ(par::partition_bytes(par::local_partition(db, topology, 0)),
            db.byte_size());
}

}  // namespace
}  // namespace eclat::wire
