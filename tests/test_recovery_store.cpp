// RecoveryStore commit semantics: idempotent first-writer-wins puts.
// Duplicates arise from a hung-then-resumed owner racing its speculative
// backup, so the racing-committers tests here are the ones the tsan
// preset must hold green.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/recovery.hpp"
#include "parallel/wire.hpp"

namespace eclat::parallel {
namespace {

mc::Blob sealed_payload(std::uint8_t fill, std::size_t size = 64) {
  return wire::seal_frame(mc::Blob(size, fill));
}

TEST(RecoveryStore, FirstWriterWinsOnResults) {
  RecoveryStore store;
  const mc::Blob bytes = sealed_payload(7);
  EXPECT_TRUE(store.put_result(3, bytes));
  // The duplicate (byte-identical, as a deterministic re-mine guarantees)
  // is absorbed: not an error, not a second entry.
  EXPECT_FALSE(store.put_result(3, bytes));
  EXPECT_TRUE(store.has_result(3));
  ASSERT_TRUE(store.result(3).has_value());
  EXPECT_EQ(*store.result(3), bytes);
  EXPECT_EQ(store.checkpointed_classes(), std::vector<std::size_t>{3});
}

TEST(RecoveryStore, FirstWriterWinsOnTidlists) {
  RecoveryStore store;
  const mc::Blob bytes = sealed_payload(9);
  EXPECT_TRUE(store.put_tidlists(5, bytes));
  EXPECT_FALSE(store.put_tidlists(5, bytes));
  ASSERT_TRUE(store.tidlists(5).has_value());
  EXPECT_EQ(*store.tidlists(5), bytes);
  EXPECT_EQ(store.tidlist_count(), 1u);
}

TEST(RecoveryStore, DistinctClassesAreIndependent) {
  RecoveryStore store;
  EXPECT_TRUE(store.put_result(1, sealed_payload(1)));
  EXPECT_TRUE(store.put_result(2, sealed_payload(2)));
  EXPECT_FALSE(store.has_result(0));
  EXPECT_EQ(store.checkpointed_classes(),
            (std::vector<std::size_t>{1, 2}));
  store.clear();
  EXPECT_FALSE(store.has_result(1));
  EXPECT_EQ(store.tidlist_count(), 0u);
}

TEST(RecoveryStore, TwoCommittersRacingIdenticalPutsExactlyOneWins) {
  // The owner-vs-backup race, compressed: two threads hammer the same
  // class ids with byte-identical payloads. Exactly one put per class may
  // report first-writer, and the stored bytes are the common payload.
  // Run under the tsan preset this also proves the internal locking.
  constexpr std::size_t kClasses = 64;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    RecoveryStore store;
    std::vector<mc::Blob> payloads;
    payloads.reserve(kClasses);
    for (std::size_t c = 0; c < kClasses; ++c) {
      payloads.push_back(
          sealed_payload(static_cast<std::uint8_t>(c), 16 + c));
    }
    std::vector<int> wins(2, 0);
    auto committer = [&](int who) {
      int won = 0;
      for (std::size_t c = 0; c < kClasses; ++c) {
        if (store.put_result(c, payloads[c])) ++won;
        if (store.put_tidlists(c, payloads[c])) ++won;
      }
      wins[static_cast<std::size_t>(who)] = won;
    };
    std::thread rival(committer, 1);
    committer(0);
    rival.join();

    // Every class was created exactly once across both committers and
    // both tables.
    EXPECT_EQ(wins[0] + wins[1], static_cast<int>(2 * kClasses));
    for (std::size_t c = 0; c < kClasses; ++c) {
      ASSERT_TRUE(store.has_result(c)) << c;
      EXPECT_EQ(*store.result(c), payloads[c]) << c;
      EXPECT_EQ(*store.tidlists(c), payloads[c]) << c;
    }
  }
}

TEST(RecoveryStore, MissingEntriesReadAsEmpty) {
  RecoveryStore store;
  EXPECT_FALSE(store.result(42).has_value());
  EXPECT_FALSE(store.tidlists(42).has_value());
  EXPECT_FALSE(store.has_result(42));
  EXPECT_TRUE(store.checkpointed_classes().empty());
}

}  // namespace
}  // namespace eclat::parallel
