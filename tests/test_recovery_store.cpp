// RecoveryStore commit semantics: idempotent first-writer-wins puts.
// Duplicates arise from a hung-then-resumed owner racing its speculative
// backup, so the racing-committers tests here are the ones the tsan
// preset must hold green.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/recovery.hpp"
#include "parallel/wire.hpp"

namespace eclat::parallel {
namespace {

mc::Blob sealed_payload(std::uint8_t fill, std::size_t size = 64) {
  return wire::seal_frame(mc::Blob(size, fill));
}

TEST(RecoveryStore, FirstWriterWinsOnResults) {
  RecoveryStore store;
  const mc::Blob bytes = sealed_payload(7);
  EXPECT_TRUE(store.put_result(3, bytes));
  // The duplicate (byte-identical, as a deterministic re-mine guarantees)
  // is absorbed: not an error, not a second entry.
  EXPECT_FALSE(store.put_result(3, bytes));
  EXPECT_TRUE(store.has_result(3));
  ASSERT_TRUE(store.result(3).has_value());
  EXPECT_EQ(*store.result(3), bytes);
  EXPECT_EQ(store.checkpointed_classes(), std::vector<std::size_t>{3});
}

TEST(RecoveryStore, FirstWriterWinsOnTidlists) {
  RecoveryStore store;
  const mc::Blob bytes = sealed_payload(9);
  EXPECT_TRUE(store.put_tidlists(5, bytes));
  EXPECT_FALSE(store.put_tidlists(5, bytes));
  ASSERT_TRUE(store.tidlists(5).has_value());
  EXPECT_EQ(*store.tidlists(5), bytes);
  EXPECT_EQ(store.tidlist_count(), 1u);
}

TEST(RecoveryStore, DistinctClassesAreIndependent) {
  RecoveryStore store;
  EXPECT_TRUE(store.put_result(1, sealed_payload(1)));
  EXPECT_TRUE(store.put_result(2, sealed_payload(2)));
  EXPECT_FALSE(store.has_result(0));
  EXPECT_EQ(store.checkpointed_classes(),
            (std::vector<std::size_t>{1, 2}));
  store.clear();
  EXPECT_FALSE(store.has_result(1));
  EXPECT_EQ(store.tidlist_count(), 0u);
}

TEST(RecoveryStore, TwoCommittersRacingIdenticalPutsExactlyOneWins) {
  // The owner-vs-backup race, compressed: two threads hammer the same
  // class ids with byte-identical payloads. Exactly one put per class may
  // report first-writer, and the stored bytes are the common payload.
  // Run under the tsan preset this also proves the internal locking.
  constexpr std::size_t kClasses = 64;
  constexpr int kRounds = 50;
  for (int round = 0; round < kRounds; ++round) {
    RecoveryStore store;
    std::vector<mc::Blob> payloads;
    payloads.reserve(kClasses);
    for (std::size_t c = 0; c < kClasses; ++c) {
      payloads.push_back(
          sealed_payload(static_cast<std::uint8_t>(c), 16 + c));
    }
    std::vector<int> wins(2, 0);
    auto committer = [&](int who) {
      int won = 0;
      for (std::size_t c = 0; c < kClasses; ++c) {
        if (store.put_result(c, payloads[c])) ++won;
        if (store.put_tidlists(c, payloads[c])) ++won;
      }
      wins[static_cast<std::size_t>(who)] = won;
    };
    std::thread rival(committer, 1);
    committer(0);
    rival.join();

    // Every class was created exactly once across both committers and
    // both tables.
    EXPECT_EQ(wins[0] + wins[1], static_cast<int>(2 * kClasses));
    for (std::size_t c = 0; c < kClasses; ++c) {
      ASSERT_TRUE(store.has_result(c)) << c;
      EXPECT_EQ(*store.result(c), payloads[c]) << c;
      EXPECT_EQ(*store.tidlists(c), payloads[c]) << c;
    }
  }
}

TEST(RecoveryStore, MissingEntriesReadAsEmpty) {
  RecoveryStore store;
  EXPECT_FALSE(store.result(42).has_value());
  EXPECT_FALSE(store.tidlists(42).has_value());
  EXPECT_FALSE(store.has_result(42));
  EXPECT_TRUE(store.checkpointed_classes().empty());
}

// --- Epoch fencing: stale writers (healed minority stragglers) are
// rejected, not committed. ---

TEST(RecoveryStore, FenceRejectsStalePutsAndCountsThem) {
  RecoveryStore store;
  store.raise_fence(2);
  EXPECT_EQ(store.fence(), 2u);
  // Epoch 1 predates the fence: both tables reject and nothing lands.
  EXPECT_FALSE(store.put_result(0, sealed_payload(1), /*epoch=*/1));
  EXPECT_FALSE(store.put_tidlists(0, sealed_payload(2), /*epoch=*/1));
  EXPECT_FALSE(store.has_result(0));
  EXPECT_FALSE(store.tidlists(0).has_value());
  EXPECT_EQ(store.fenced_rejections(), 2u);
  // Epoch == fence is current, not stale.
  EXPECT_TRUE(store.put_result(0, sealed_payload(1), /*epoch=*/2));
  EXPECT_TRUE(store.put_tidlists(0, sealed_payload(2), /*epoch=*/2));
  EXPECT_EQ(store.fenced_rejections(), 2u);
}

TEST(RecoveryStore, FenceIsMonotone) {
  RecoveryStore store;
  store.raise_fence(3);
  store.raise_fence(1);  // lowering is a no-op: survivors only advance it
  EXPECT_EQ(store.fence(), 3u);
  EXPECT_FALSE(store.put_result(7, sealed_payload(7), /*epoch=*/2));
  store.raise_fence(5);
  EXPECT_EQ(store.fence(), 5u);
}

TEST(RecoveryStore, FencedDuplicateDoesNotDisturbCommittedEntry) {
  // A stale re-put of an already-committed class must neither overwrite
  // nor count as a first write; the original bytes stay authoritative.
  RecoveryStore store;
  const mc::Blob bytes = sealed_payload(4);
  EXPECT_TRUE(store.put_result(9, bytes, /*epoch=*/0));
  store.raise_fence(1);
  EXPECT_FALSE(store.put_result(9, bytes, /*epoch=*/0));
  EXPECT_EQ(*store.result(9), bytes);
  EXPECT_EQ(store.fenced_rejections(), 1u);
}

TEST(RecoveryStore, ClearResetsFenceAndCounters) {
  RecoveryStore store;
  store.raise_fence(4);
  EXPECT_FALSE(store.put_result(1, sealed_payload(1), /*epoch=*/0));
  store.clear();
  EXPECT_EQ(store.fence(), 0u);
  EXPECT_EQ(store.fenced_rejections(), 0u);
  EXPECT_TRUE(store.put_result(1, sealed_payload(1), /*epoch=*/0));
}

// --- ReplicaTracker: rendezvous placement and survivor-driven
// re-replication. ---

std::vector<bool> none_failed(std::size_t nodes) {
  return std::vector<bool>(nodes, false);
}

TEST(ReplicaTracker, RendezvousRankIsADeterministicPermutation) {
  for (std::size_t c = 0; c < 32; ++c) {
    const std::vector<std::size_t> rank =
        ReplicaTracker::rendezvous_rank(c, 6);
    ASSERT_EQ(rank.size(), 6u);
    std::vector<bool> seen(6, false);
    for (const std::size_t node : rank) {
      ASSERT_LT(node, 6u);
      EXPECT_FALSE(seen[node]) << "duplicate node in rank of class " << c;
      seen[node] = true;
    }
    EXPECT_EQ(rank, ReplicaTracker::rendezvous_rank(c, 6));
  }
}

TEST(ReplicaTracker, InitialHoldersAreFirstRLiveRankedNodes) {
  ReplicaTracker tracker(4, 2, 8, none_failed(4));
  EXPECT_EQ(tracker.replication(), 2u);
  for (std::size_t c = 0; c < 8; ++c) {
    const std::vector<std::size_t> rank =
        ReplicaTracker::rendezvous_rank(c, 4);
    const std::vector<std::size_t> expected(rank.begin(), rank.begin() + 2);
    EXPECT_EQ(tracker.holders(c), expected) << "class " << c;
    EXPECT_TRUE(tracker.available(c));
  }
  EXPECT_EQ(tracker.total_replicas(), 16u);
}

TEST(ReplicaTracker, InitialHoldersSkipAlreadyFailedNodes) {
  // A node dead at the exchange commit never received the multicast, so
  // it must not count as a holder.
  std::vector<bool> failed = none_failed(4);
  failed[ReplicaTracker::rendezvous_rank(0, 4)[0]] = true;
  ReplicaTracker tracker(4, 1, 1, failed);
  ASSERT_EQ(tracker.holders(0).size(), 1u);
  EXPECT_EQ(tracker.holders(0)[0], ReplicaTracker::rendezvous_rank(0, 4)[1]);
}

TEST(ReplicaTracker, ReplicationZeroMeansFullAndClampsToNodes) {
  ReplicaTracker full(4, 0, 2, none_failed(4));
  EXPECT_EQ(full.replication(), 4u);
  EXPECT_EQ(full.holders(0).size(), 4u);
  ReplicaTracker clamped(4, 9, 2, none_failed(4));
  EXPECT_EQ(clamped.replication(), 4u);
}

TEST(ReplicaTracker, FailureRefillsFromSurvivingHolder) {
  ReplicaTracker tracker(4, 2, 4, none_failed(4));
  const std::vector<std::size_t> rank = ReplicaTracker::rendezvous_rank(0, 4);
  std::vector<bool> failed = none_failed(4);
  failed[rank[0]] = true;  // kill class 0's first holder
  const std::vector<ReplicaTransfer> transfers = tracker.on_failures(failed);
  // Every class that lost a holder is refilled with the next live ranked
  // node, streamed from its first surviving holder.
  for (const ReplicaTransfer& transfer : transfers) {
    EXPECT_NE(transfer.source, transfer.target);
    EXPECT_FALSE(failed[transfer.source]);
    EXPECT_FALSE(failed[transfer.target]);
  }
  ASSERT_EQ(tracker.holders(0).size(), 2u);
  EXPECT_EQ(tracker.holders(0)[0], rank[1]);  // surviving holder, source
  EXPECT_EQ(tracker.holders(0)[1], rank[2]);  // refilled target
  EXPECT_TRUE(tracker.available(0));
  // Repeating the identical snapshot schedules nothing new (idempotent).
  EXPECT_TRUE(tracker.on_failures(failed).empty());
}

TEST(ReplicaTracker, AllHoldersLostMeansUnavailableAndNoTransfers) {
  ReplicaTracker tracker(4, 1, 4, none_failed(4));
  std::vector<bool> failed = none_failed(4);
  failed[ReplicaTracker::rendezvous_rank(2, 4)[0]] = true;
  tracker.on_failures(failed);
  // Class 2's only holder died: the image is gone for good — no refill
  // (there is no live source to stream from), lineage takes over.
  EXPECT_FALSE(tracker.available(2));
  EXPECT_TRUE(tracker.holders(2).empty());
  // A later, larger snapshot must not resurrect it.
  failed[(ReplicaTracker::rendezvous_rank(2, 4)[0] + 1) % 4] = true;
  tracker.on_failures(failed);
  EXPECT_FALSE(tracker.available(2));
}

TEST(ReplicaTracker, TotalReplicasTracksLiveHolderCount) {
  ReplicaTracker tracker(4, 2, 4, none_failed(4));
  EXPECT_EQ(tracker.total_replicas(), 8u);
  std::vector<bool> failed = none_failed(4);
  failed[0] = failed[1] = failed[2] = true;
  tracker.on_failures(failed);
  // One survivor left: each class has at most one live holder, and only
  // if node 3 already held it or a refill was possible (it never is with
  // no second live source needed — the survivor refills itself when it
  // was not a holder but some holder survived; with all other nodes dead
  // a class held only by the dead is simply lost).
  std::size_t live = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_LE(tracker.holders(c).size(), 1u);
    live += tracker.holders(c).size();
  }
  EXPECT_EQ(tracker.total_replicas(), live);
}

}  // namespace
}  // namespace eclat::parallel
