#!/usr/bin/env bash
# clang-tidy driver for the repo: runs the .clang-tidy check set over every
# translation unit in src/ using a compile_commands.json database.
#
#   tools/run-tidy.sh [--diff [base-ref]] [build-dir] [-- extra clang-tidy args]
#
# --diff restricts the run to src/ .cpp files changed relative to base-ref
# (default: origin/main if it resolves, else HEAD), plus uncommitted edits —
# the fast pre-push / PR mode. Without it every file is checked.
#
# Exits non-zero on any warning (WarningsAsErrors: '*'). When clang-tidy is
# not installed (e.g. a gcc-only container), prints a notice and exits 0 so
# sanitizer-only environments are not blocked; the CI tidy job runs on an
# image that ships clang-tidy and is the authoritative gate.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"

diff_mode=0
diff_base=""
if [[ "${1:-}" == "--diff" ]]; then
  diff_mode=1
  shift
  if [[ $# -gt 0 && "${1}" != "--" && ! -d "${1}" ]] &&
     git -C "${repo_root}" rev-parse --verify --quiet "${1}^{commit}" > /dev/null; then
    diff_base="${1}"
    shift
  fi
fi

build_dir="${1:-"${repo_root}/build"}"
shift $(( $# > 0 ? 1 : 0 )) || true
if [[ "${1:-}" == "--" ]]; then shift; fi

tidy_bin=""
for candidate in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 \
                 clang-tidy-17 clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "${candidate}" > /dev/null 2>&1; then
    tidy_bin="${candidate}"
    break
  fi
done
if [[ -z "${tidy_bin}" ]]; then
  echo "run-tidy: clang-tidy not found on PATH; skipping (install LLVM to run locally)" >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run-tidy: configuring ${build_dir} to produce compile_commands.json" >&2
  cmake -B "${build_dir}" -S "${repo_root}" \
    -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

if [[ ${diff_mode} -eq 1 ]]; then
  if [[ -z "${diff_base}" ]]; then
    if git -C "${repo_root}" rev-parse --verify --quiet \
        "origin/main^{commit}" > /dev/null; then
      diff_base="origin/main"
    else
      diff_base="HEAD"
    fi
  fi
  # Committed changes vs the base, plus staged/unstaged edits; cpp only.
  mapfile -t sources < <(
    {
      git -C "${repo_root}" diff --name-only --diff-filter=d \
        "${diff_base}" -- 'src/*.cpp'
      git -C "${repo_root}" diff --name-only --cached --diff-filter=d \
        -- 'src/*.cpp'
    } | sort -u | while read -r rel; do echo "${repo_root}/${rel}"; done)
  if [[ ${#sources[@]} -eq 0 ]]; then
    echo "run-tidy: no src/ .cpp files changed vs ${diff_base}; nothing to do" >&2
    exit 0
  fi
  echo "run-tidy: ${tidy_bin} over ${#sources[@]} changed file(s) vs ${diff_base}" >&2
else
  mapfile -t sources < <(find "${repo_root}/src" -name '*.cpp' | sort)
  echo "run-tidy: ${tidy_bin} over ${#sources[@]} files in src/" >&2
fi

status=0
for source in "${sources[@]}"; do
  if ! "${tidy_bin}" -p "${build_dir}" --quiet "$@" "${source}"; then
    status=1
  fi
done

if [[ ${status} -ne 0 ]]; then
  echo "run-tidy: FAILED (warnings above)" >&2
else
  echo "run-tidy: clean" >&2
fi
exit ${status}
