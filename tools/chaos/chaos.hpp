// Seeded compound-fault chaos harness for the Par-Eclat pipeline.
//
// The fault-injection unit tests pin down *specific* schedules; this
// harness sweeps *random* ones. generate_plan(seed) draws a valid-by-
// construction compound FaultPlan — crashes, hangs, disk stalls, message
// corruption, hub degradation and network partitions, in any mix — and
// run_plan() executes Par-Eclat under it on a deterministic virtual-time
// cluster. The contract the sweep enforces over hundreds of seeds:
//
//   1. the run either completes with output byte-identical to the
//      fault-free reference, or aborts cleanly with a deterministic
//      diagnostic — it never hangs and never silently drops itemsets;
//   2. re-running the same (plan, seed) reproduces the identical outcome,
//      makespan and bytes (virtual time makes replays exact);
//   3. aborts are only ever *expected* ones (no quorum left, corruption
//      beyond the retransmission budget) — an "assembly:" or "recovery:"
//      diagnostic means an invariant broke and the sweep fails loudly.
//
// Plans serialize to a line-based text form (plan_to_text/plan_from_text)
// so a failing schedule found by the CI soak leg can be attached as an
// artifact and replayed verbatim with `chaos --plan-file=...`.
//
// Lives in tools/ (not src/): this is a harness over the public pipeline,
// not part of it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/horizontal.hpp"
#include "exec/backend.hpp"
#include "mc/fault.hpp"
#include "mc/topology.hpp"
#include "mc/trace.hpp"
#include "parallel/par_eclat.hpp"

namespace eclat::chaos {

/// Shape of the random plans generate_plan draws. Defaults give compound
/// schedules on a 2x2 topology whose windows are scaled to makespan_hint
/// (pass the fault-free makespan of the database under test).
struct ChaosKnobs {
  std::size_t total_processors = 4;
  /// Events per plan, drawn uniformly from [min_events, max_events].
  std::size_t min_events = 1;
  std::size_t max_events = 5;
  /// Fault-free makespan of the run under test: time-triggered events and
  /// partition/degradation windows are placed inside [0, makespan_hint].
  double makespan_hint = 1.0;
  /// Per-kind toggles, so a sweep can isolate one failure domain.
  bool crashes = true;
  bool hangs = true;
  bool stalls = true;
  bool corruptions = true;
  bool hub_degrades = true;
  bool partitions = true;
};

/// Draw a random compound fault plan. Deterministic in (seed, knobs);
/// always satisfies mc::validate_plan by construction (trigger tuples are
/// deduplicated, partition member sets are proper subsets, windows are
/// ordered).
mc::FaultPlan generate_plan(std::uint64_t seed, const ChaosKnobs& knobs);

/// Serialize a plan to a line-based text form ("seed ..." then one
/// "event ..." line per event) and parse it back. plan_from_text throws
/// std::invalid_argument on malformed input, naming the offending line.
std::string plan_to_text(const mc::FaultPlan& plan);
mc::FaultPlan plan_from_text(const std::string& text);

/// How to execute a plan.
struct ChaosOptions {
  mc::Topology topology{2, 2};
  Count minsup = 2;
  std::size_t replication = 0;  ///< 0 = full replication
  bool speculate = true;        ///< progress leases + backup re-execution
};

/// Outcome of one chaos run.
struct ChaosRun {
  /// True when at least one processor finished and a result was
  /// assembled; result_bytes then holds the canonical serialized result.
  bool completed = false;
  /// True when the run ended without output but deterministically: every
  /// processor aborted (no survivors), or the pipeline raised one of the
  /// *expected* abort diagnostics. completed and clean_abort are mutually
  /// exclusive; both false means the run aborted with an unexpected
  /// diagnostic — an invariant broke.
  bool clean_abort = false;
  std::string error;  ///< diagnostic of an aborted run, empty otherwise
  double makespan = 0.0;
  std::size_t finished = 0;
  std::size_t crashed = 0;
  std::size_t hung = 0;
  std::size_t partitioned = 0;
  std::uint64_t lineage_rebuilds = 0;
  std::uint64_t fenced_rejections = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t replica_copies = 0;
  std::vector<std::uint8_t> result_bytes;
};

/// Execute Par-Eclat on `db` under `plan`. Never hangs: every fault kind
/// either aborts the processor through the cluster's reaping paths or
/// only costs virtual time. Pass a `trace` to capture the virtual-time
/// event timeline (diffing two traces of the same plan localizes a
/// determinism break to its first diverging event).
ChaosRun run_plan(const HorizontalDatabase& db, const mc::FaultPlan& plan,
                  const ChaosOptions& options, mc::Trace* trace = nullptr);

/// A small (fast, but multi-class) chaos database: deterministic in seed.
HorizontalDatabase chaos_database(std::uint64_t seed = 1997,
                                  std::size_t transactions = 200);

// --- Exec-side chaos: the same sweep idea aimed at the native thread
// backend's fault-tolerance layer (exec/exec_fault.hpp). Random seeded
// ExecFaultPlans — injected throws, corrupt results, cooperative stalls,
// explicit and hash-selected targets — executed on real threads, with
// the §11 contract enforced per seed: byte-identical to the fault-free
// reference or a clean typed quarantine abort, reproducibly. ---

/// Shape of the random exec plans generate_exec_plan draws.
struct ExecChaosKnobs {
  /// Events per plan, drawn uniformly from [min_events, max_events].
  std::size_t min_events = 1;
  std::size_t max_events = 4;
  /// Per-kind toggles, so a sweep can isolate one failure domain.
  bool throws = true;
  bool corrupts = true;
  bool stalls = true;
  /// Upper bound on an event's `times` (leading faulted attempts);
  /// relative to --exec-max-retries this decides recover vs quarantine.
  std::uint32_t max_times = 4;
};

/// Draw a random exec fault plan. Deterministic in (seed, knobs); always
/// satisfies exec::validate_exec_plan by construction. Events mix
/// hash-selected targets (which generalize over any class count) with
/// explicit low class ids.
exec::ExecFaultPlan generate_exec_plan(std::uint64_t seed,
                                       const ExecChaosKnobs& knobs);

/// How to execute an exec plan on the thread backend.
struct ExecChaosOptions {
  Count minsup = 2;
  std::size_t threads = 3;
  exec::ClassScheduler scheduler = exec::ClassScheduler::kWorkStealing;
  std::uint32_t max_retries = 2;
  std::size_t mem_budget = 0;  ///< bytes per worker arena; 0 = unlimited
};

/// Outcome of one exec chaos run.
struct ExecChaosRun {
  /// True when the backend completed; result_bytes then holds the
  /// canonical serialized result, which must equal the reference's.
  bool completed = false;
  /// True when the run ended in the typed clean abort (a class exceeded
  /// its retry budget: exec::ExecClassQuarantined). Both flags false
  /// means an unexpected escape — an invariant broke.
  bool clean_abort = false;
  std::string error;  ///< diagnostic of an aborted run, empty otherwise
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t reclaims = 0;
  std::vector<std::uint8_t> result_bytes;
};

/// Execute Par-Eclat on `db` over the thread backend under `plan`. Never
/// hangs: stalls are cooperative and reclaimed by the watchdog, doomed
/// classes quarantine, and the pool always drains.
ExecChaosRun run_exec_plan(const HorizontalDatabase& db,
                           const exec::ExecFaultPlan& plan,
                           const ExecChaosOptions& options);

}  // namespace eclat::chaos
