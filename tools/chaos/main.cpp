// chaos: seeded compound-fault sweeps over the Par-Eclat pipeline.
//
//   chaos --sweep=200 --seed0=1            # 200 random compound schedules
//   chaos --seed=42 --print-plan           # one schedule, dump its text form
//   chaos --plan-file=fail.plan            # replay a schedule from a file
//   chaos --sweep=500 --fail-file=bad.plan # save violating plans to a file
//
// Every run is checked against the harness contract: byte-identical output
// to the fault-free reference, or a deterministic expected clean abort —
// and a second execution of the same plan must reproduce the first.
// Exit status 0 = every run honored the contract; 1 = at least one
// violation (the offending plan is printed in replayable text form).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "chaos.hpp"
#include "common/flags.hpp"
#include "data/result_io.hpp"

namespace {

using namespace eclat;

struct Violation {
  std::uint64_t seed;
  std::string what;
};

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  chaos::ChaosOptions options;
  options.topology = {flags.get_uint("procs", 2), flags.get_uint("hosts", 2)};
  options.minsup = static_cast<Count>(flags.get_uint("minsup", 2));
  options.replication = flags.get_uint("replication", 0);
  options.speculate = flags.get_bool("speculate", true);

  const HorizontalDatabase db = chaos::chaos_database(
      flags.get_uint("db-seed", 1997), flags.get_uint("transactions", 200));

  // Fault-free reference: the bytes every completed chaos run must match,
  // and the makespan that scales the generated windows.
  const chaos::ChaosRun reference = chaos::run_plan(db, {}, options);
  if (!reference.completed) {
    std::fprintf(stderr, "chaos: fault-free reference run failed: %s\n",
                 reference.error.c_str());
    return 1;
  }

  chaos::ChaosKnobs knobs;
  knobs.total_processors = options.topology.total();
  knobs.min_events = flags.get_uint("min-events", 1);
  knobs.max_events = flags.get_uint("max-events", 5);
  knobs.makespan_hint = reference.makespan;
  knobs.crashes = flags.get_bool("crashes", true);
  knobs.hangs = flags.get_bool("hangs", true);
  knobs.stalls = flags.get_bool("stalls", true);
  knobs.corruptions = flags.get_bool("corruptions", true);
  knobs.hub_degrades = flags.get_bool("hub-degrades", true);
  knobs.partitions = flags.get_bool("partitions", true);

  std::vector<std::pair<std::uint64_t, mc::FaultPlan>> plans;
  if (flags.has("plan-file")) {
    const std::string path = flags.get("plan-file", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "chaos: cannot read plan file '%s'\n",
                   path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    mc::FaultPlan plan = chaos::plan_from_text(text.str());
    plans.emplace_back(plan.seed, std::move(plan));
  } else if (flags.has("sweep")) {
    const std::uint64_t sweep = flags.get_uint("sweep", 200);
    const std::uint64_t seed0 = flags.get_uint("seed0", 1);
    for (std::uint64_t s = 0; s < sweep; ++s) {
      plans.emplace_back(seed0 + s,
                         chaos::generate_plan(seed0 + s, knobs));
    }
  } else {
    const std::uint64_t seed = flags.get_uint("seed", 42);
    plans.emplace_back(seed, chaos::generate_plan(seed, knobs));
  }

  // Debug mode: run the (single) plan N times with traces attached and
  // report the first event where any run's virtual-time timeline diverges
  // from the first run's. Localizes a determinism break to its source.
  if (flags.has("trace-diff")) {
    const std::uint64_t rounds = flags.get_uint("trace-diff", 8);
    mc::Trace base_trace;
    const chaos::ChaosRun base =
        chaos::run_plan(db, plans.front().second, options, &base_trace);
    const auto base_events = base_trace.sorted();
    for (std::uint64_t r = 1; r < rounds; ++r) {
      mc::Trace trace;
      const chaos::ChaosRun run =
          chaos::run_plan(db, plans.front().second, options, &trace);
      const auto events = trace.sorted();
      const std::size_t n = std::min(base_events.size(), events.size());
      std::size_t i = 0;
      while (i < n && base_events[i].processor == events[i].processor &&
             base_events[i].time == events[i].time &&
             base_events[i].kind == events[i].kind &&
             base_events[i].label == events[i].label &&
             // kCompute detail is measured host nanoseconds (diagnostic
             // only; with cpu_scale=0 it never enters virtual time).
             (base_events[i].kind == mc::TraceKind::kCompute ||
              base_events[i].detail == events[i].detail)) {
        ++i;
      }
      if (i == base_events.size() && i == events.size() &&
          run.makespan == base.makespan) {
        continue;
      }
      std::printf("round %llu diverges at event %zu (of %zu vs %zu), "
                  "makespan %.17g vs %.17g\n",
                  static_cast<unsigned long long>(r), i, base_events.size(),
                  events.size(), base.makespan, run.makespan);
      for (std::size_t j = (i > 6 ? i - 6 : 0);
           j < std::min(i + 6, n); ++j) {
        std::printf(
            "  [%zu] base p%zu t=%.9f %s %s %llu | run p%zu t=%.9f %s %s "
            "%llu\n",
            j, base_events[j].processor, base_events[j].time,
            mc::to_string(base_events[j].kind), base_events[j].label.c_str(),
            static_cast<unsigned long long>(base_events[j].detail),
            events[j].processor, events[j].time,
            mc::to_string(events[j].kind), events[j].label.c_str(),
            static_cast<unsigned long long>(events[j].detail));
      }
      return 1;
    }
    std::printf("trace-diff: %llu rounds identical\n",
                static_cast<unsigned long long>(rounds));
    return 0;
  }

  std::vector<Violation> violations;
  std::size_t completed = 0, aborted = 0;
  for (const auto& [seed, plan] : plans) {
    if (flags.get_bool("print-plan", false)) {
      std::fputs(chaos::plan_to_text(plan).c_str(), stdout);
    }
    const chaos::ChaosRun run = chaos::run_plan(db, plan, options);
    std::string what;
    if (run.completed) {
      ++completed;
      if (run.result_bytes != reference.result_bytes) {
        what = "completed run diverged from the fault-free reference bytes";
      }
    } else if (run.clean_abort) {
      ++aborted;
    } else {
      what = "unexpected abort: " + run.error;
    }
    if (what.empty() && flags.get_bool("replay-check", true)) {
      const chaos::ChaosRun again = chaos::run_plan(db, plan, options);
      if (again.completed != run.completed) {
        what = "replay diverged: completed flag";
      } else if (again.clean_abort != run.clean_abort) {
        what = "replay diverged: clean_abort flag";
      } else if (again.error != run.error) {
        what = "replay diverged: error '" + run.error + "' vs '" +
               again.error + "'";
      } else if (again.makespan != run.makespan) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "replay diverged: makespan %.17g vs %.17g "
                      "(lineage %llu vs %llu, fenced %llu vs %llu, "
                      "finished %zu vs %zu, partitioned %zu vs %zu)",
                      run.makespan, again.makespan,
                      static_cast<unsigned long long>(run.lineage_rebuilds),
                      static_cast<unsigned long long>(again.lineage_rebuilds),
                      static_cast<unsigned long long>(run.fenced_rejections),
                      static_cast<unsigned long long>(again.fenced_rejections),
                      run.finished, again.finished, run.partitioned,
                      again.partitioned);
        what = buf;
      } else if (again.result_bytes != run.result_bytes) {
        what = "replay diverged: result bytes";
      }
    }
    if (!what.empty()) {
      violations.push_back({seed, what});
      std::fprintf(stderr, "chaos: seed %llu VIOLATION: %s\n",
                   static_cast<unsigned long long>(seed), what.c_str());
      std::fputs(chaos::plan_to_text(plan).c_str(), stderr);
      // Violating plans also land in --fail-file (replayable with
      // --plan-file) so a CI soak leg can attach them as artifacts.
      if (flags.has("fail-file")) {
        std::ofstream fail(flags.get("fail-file", ""), std::ios::app);
        fail << "# seed " << seed << ": " << what << "\n"
             << chaos::plan_to_text(plan) << "\n";
      }
    }
    if (flags.get_bool("verbose", false)) {
      std::printf(
          "seed %llu: %s makespan=%.6f finished=%zu crashed=%zu hung=%zu "
          "partitioned=%zu lineage=%llu fenced=%llu%s%s\n",
          static_cast<unsigned long long>(seed),
          run.completed ? "completed" : "aborted ", run.makespan,
          run.finished, run.crashed, run.hung, run.partitioned,
          static_cast<unsigned long long>(run.lineage_rebuilds),
          static_cast<unsigned long long>(run.fenced_rejections),
          run.error.empty() ? "" : " error=", run.error.c_str());
    }
  }

  std::printf(
      "chaos: %zu plans, %zu completed (byte-checked), %zu clean aborts, "
      "%zu violations\n",
      plans.size(), completed, aborted, violations.size());
  return violations.empty() ? 0 : 1;
}
