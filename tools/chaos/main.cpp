// chaos: seeded compound-fault sweeps over the Par-Eclat pipeline.
//
//   chaos --sweep=200 --seed0=1            # 200 random compound schedules
//   chaos --seed=42 --print-plan           # one schedule, dump its text form
//   chaos --plan-file=fail.plan            # replay a schedule from a file
//   chaos --sweep=500 --fail-file=bad.plan # save violating plans to a file
//   chaos --backend=threads --sweep=200    # exec fault plans on real threads
//   chaos --backend=both --sweep=200       # same seeds on both backends
//
// --backend selects the leg: "mc" (default) sweeps compound cluster
// schedules on the virtual-time simulator; "threads" sweeps seeded
// ExecFaultPlans (injected throws, corrupt results, cooperative stalls)
// on the native thread backend, rotating worker count and scheduler per
// seed unless pinned with --exec-threads / --exec-scheduler; "both" runs
// the two legs off the same seeds and diffs their outcomes.
//
// Every run is checked against the harness contract: byte-identical output
// to the fault-free reference, or a deterministic expected clean abort —
// and a second execution of the same plan must reproduce the first (for
// the threads leg, only when --exec-mem-budget is off: budget runs stay
// contract-deterministic but their degradation history may vary).
// Exit status 0 = every run honored the contract; 1 = at least one
// violation (the offending plan is printed in replayable text form).
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "chaos.hpp"
#include "common/flags.hpp"
#include "data/result_io.hpp"

namespace {

using namespace eclat;

struct Violation {
  std::uint64_t seed;
  std::string backend;
  std::string what;
};

/// First non-comment token of a plan file decides its dialect: "seed"
/// opens an mc compound plan, "exec-seed" an exec fault plan.
bool is_exec_plan_text(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    return head == "exec-seed";
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);

  const std::string backend = flags.get("backend", "mc");
  if (backend != "mc" && backend != "threads" && backend != "both") {
    std::fprintf(stderr,
                 "chaos: unknown --backend '%s' (expected 'mc', 'threads' "
                 "or 'both')\n",
                 backend.c_str());
    return 1;
  }
  bool run_mc_leg = backend != "threads";
  bool run_exec_leg = backend != "mc";

  chaos::ChaosOptions options;
  options.topology = {flags.get_uint("procs", 2), flags.get_uint("hosts", 2)};
  options.minsup = static_cast<Count>(flags.get_uint("minsup", 2));
  options.replication = flags.get_uint("replication", 0);
  options.speculate = flags.get_bool("speculate", true);

  const HorizontalDatabase db = chaos::chaos_database(
      flags.get_uint("db-seed", 1997), flags.get_uint("transactions", 200));

  // Fault-free reference: the bytes every completed chaos run must match
  // — on either backend, which *is* the cross-backend determinism
  // contract — and the makespan that scales the generated mc windows.
  const chaos::ChaosRun reference = chaos::run_plan(db, {}, options);
  if (!reference.completed) {
    std::fprintf(stderr, "chaos: fault-free reference run failed: %s\n",
                 reference.error.c_str());
    return 1;
  }

  chaos::ChaosKnobs knobs;
  knobs.total_processors = options.topology.total();
  knobs.min_events = flags.get_uint("min-events", 1);
  knobs.max_events = flags.get_uint("max-events", 5);
  knobs.makespan_hint = reference.makespan;
  knobs.crashes = flags.get_bool("crashes", true);
  knobs.hangs = flags.get_bool("hangs", true);
  knobs.stalls = flags.get_bool("stalls", true);
  knobs.corruptions = flags.get_bool("corruptions", true);
  knobs.hub_degrades = flags.get_bool("hub-degrades", true);
  knobs.partitions = flags.get_bool("partitions", true);

  chaos::ExecChaosKnobs exec_knobs;
  exec_knobs.min_events = flags.get_uint("min-events", 1);
  exec_knobs.max_events = flags.get_uint("max-events", 4);
  exec_knobs.throws = flags.get_bool("exec-throws", true);
  exec_knobs.corrupts = flags.get_bool("exec-corrupts", true);
  exec_knobs.stalls = flags.get_bool("exec-stalls", true);
  exec_knobs.max_times =
      static_cast<std::uint32_t>(flags.get_uint("exec-max-times", 4));

  chaos::ExecChaosOptions exec_base;
  exec_base.minsup = options.minsup;
  exec_base.max_retries =
      static_cast<std::uint32_t>(flags.get_uint("exec-max-retries", 2));
  exec_base.mem_budget = flags.get_uint("exec-mem-budget", 0);
  const std::uint64_t pinned_threads = flags.get_uint("exec-threads", 0);
  const bool pinned_scheduler = flags.has("exec-scheduler");
  if (pinned_scheduler) {
    exec_base.scheduler =
        exec::parse_scheduler(flags.get("exec-scheduler", "steal"));
  }
  // Unpinned sweeps rotate the execution shape per seed so one sweep
  // covers threads 1..5 under both schedulers.
  const auto exec_options_for = [&](std::uint64_t seed) {
    chaos::ExecChaosOptions o = exec_base;
    o.threads = pinned_threads != 0 ? pinned_threads : 1 + seed % 5;
    if (!pinned_scheduler) {
      o.scheduler = (seed >> 3) % 2 == 0 ? exec::ClassScheduler::kWorkStealing
                                         : exec::ClassScheduler::kStatic;
    }
    return o;
  };

  std::vector<std::pair<std::uint64_t, mc::FaultPlan>> plans;
  std::vector<std::pair<std::uint64_t, exec::ExecFaultPlan>> exec_plans;
  if (flags.has("plan-file")) {
    const std::string path = flags.get("plan-file", "");
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "chaos: cannot read plan file '%s'\n",
                   path.c_str());
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    try {
      if (is_exec_plan_text(text.str())) {
        exec::ExecFaultPlan plan = exec::exec_plan_from_text(text.str());
        run_mc_leg = false;
        run_exec_leg = true;
        exec_plans.emplace_back(plan.seed, std::move(plan));
      } else {
        mc::FaultPlan plan = chaos::plan_from_text(text.str());
        run_mc_leg = true;
        run_exec_leg = false;
        plans.emplace_back(plan.seed, std::move(plan));
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "chaos: %s: %s\n", path.c_str(), e.what());
      return 1;
    }
  } else if (flags.has("sweep")) {
    const std::uint64_t sweep = flags.get_uint("sweep", 200);
    const std::uint64_t seed0 = flags.get_uint("seed0", 1);
    for (std::uint64_t s = 0; s < sweep; ++s) {
      if (run_mc_leg) {
        plans.emplace_back(seed0 + s, chaos::generate_plan(seed0 + s, knobs));
      }
      if (run_exec_leg) {
        exec_plans.emplace_back(
            seed0 + s, chaos::generate_exec_plan(seed0 + s, exec_knobs));
      }
    }
  } else {
    const std::uint64_t seed = flags.get_uint("seed", 42);
    if (run_mc_leg) plans.emplace_back(seed, chaos::generate_plan(seed, knobs));
    if (run_exec_leg) {
      exec_plans.emplace_back(seed,
                              chaos::generate_exec_plan(seed, exec_knobs));
    }
  }

  // Debug mode: run the (single) mc plan N times with traces attached and
  // report the first event where any run's virtual-time timeline diverges
  // from the first run's. Localizes a determinism break to its source.
  if (flags.has("trace-diff")) {
    if (plans.empty()) {
      std::fprintf(stderr,
                   "chaos: --trace-diff needs an mc plan (virtual-time "
                   "traces exist only on the simulator backend)\n");
      return 1;
    }
    const std::uint64_t rounds = flags.get_uint("trace-diff", 8);
    mc::Trace base_trace;
    const chaos::ChaosRun base =
        chaos::run_plan(db, plans.front().second, options, &base_trace);
    const auto base_events = base_trace.sorted();
    for (std::uint64_t r = 1; r < rounds; ++r) {
      mc::Trace trace;
      const chaos::ChaosRun run =
          chaos::run_plan(db, plans.front().second, options, &trace);
      const auto events = trace.sorted();
      const std::size_t n = std::min(base_events.size(), events.size());
      std::size_t i = 0;
      while (i < n && base_events[i].processor == events[i].processor &&
             base_events[i].time == events[i].time &&
             base_events[i].kind == events[i].kind &&
             base_events[i].label == events[i].label &&
             // kCompute detail is measured host nanoseconds (diagnostic
             // only; with cpu_scale=0 it never enters virtual time).
             (base_events[i].kind == mc::TraceKind::kCompute ||
              base_events[i].detail == events[i].detail)) {
        ++i;
      }
      if (i == base_events.size() && i == events.size() &&
          run.makespan == base.makespan) {
        continue;
      }
      std::printf("round %llu diverges at event %zu (of %zu vs %zu), "
                  "makespan %.17g vs %.17g\n",
                  static_cast<unsigned long long>(r), i, base_events.size(),
                  events.size(), base.makespan, run.makespan);
      for (std::size_t j = (i > 6 ? i - 6 : 0);
           j < std::min(i + 6, n); ++j) {
        std::printf(
            "  [%zu] base p%zu t=%.9f %s %s %llu | run p%zu t=%.9f %s %s "
            "%llu\n",
            j, base_events[j].processor, base_events[j].time,
            mc::to_string(base_events[j].kind), base_events[j].label.c_str(),
            static_cast<unsigned long long>(base_events[j].detail),
            events[j].processor, events[j].time,
            mc::to_string(events[j].kind), events[j].label.c_str(),
            static_cast<unsigned long long>(events[j].detail));
      }
      return 1;
    }
    std::printf("trace-diff: %llu rounds identical\n",
                static_cast<unsigned long long>(rounds));
    return 0;
  }

  std::vector<Violation> violations;
  const auto report = [&](std::uint64_t seed, const std::string& leg,
                          const std::string& what,
                          const std::string& plan_text) {
    violations.push_back({seed, leg, what});
    std::fprintf(stderr, "chaos: %s seed %llu VIOLATION: %s\n", leg.c_str(),
                 static_cast<unsigned long long>(seed), what.c_str());
    std::fputs(plan_text.c_str(), stderr);
    // Violating plans also land in --fail-file (replayable with
    // --plan-file) so a CI soak leg can attach them as artifacts.
    if (flags.has("fail-file")) {
      std::ofstream fail(flags.get("fail-file", ""), std::ios::app);
      fail << "# " << leg << " seed " << seed << ": " << what << "\n"
           << plan_text << "\n";
    }
  };

  // --- mc leg ---
  std::size_t completed = 0, aborted = 0;
  std::map<std::uint64_t, char> mc_outcome;  // 'c'ompleted / 'a'borted / '!'
  for (const auto& [seed, plan] : plans) {
    if (flags.get_bool("print-plan", false)) {
      std::fputs(chaos::plan_to_text(plan).c_str(), stdout);
    }
    const chaos::ChaosRun run = chaos::run_plan(db, plan, options);
    std::string what;
    if (run.completed) {
      ++completed;
      mc_outcome[seed] = 'c';
      if (run.result_bytes != reference.result_bytes) {
        what = "completed run diverged from the fault-free reference bytes";
      }
    } else if (run.clean_abort) {
      ++aborted;
      mc_outcome[seed] = 'a';
    } else {
      mc_outcome[seed] = '!';
      what = "unexpected abort: " + run.error;
    }
    if (what.empty() && flags.get_bool("replay-check", true)) {
      const chaos::ChaosRun again = chaos::run_plan(db, plan, options);
      if (again.completed != run.completed) {
        what = "replay diverged: completed flag";
      } else if (again.clean_abort != run.clean_abort) {
        what = "replay diverged: clean_abort flag";
      } else if (again.error != run.error) {
        what = "replay diverged: error '" + run.error + "' vs '" +
               again.error + "'";
      } else if (again.makespan != run.makespan) {
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "replay diverged: makespan %.17g vs %.17g "
                      "(lineage %llu vs %llu, fenced %llu vs %llu, "
                      "finished %zu vs %zu, partitioned %zu vs %zu)",
                      run.makespan, again.makespan,
                      static_cast<unsigned long long>(run.lineage_rebuilds),
                      static_cast<unsigned long long>(again.lineage_rebuilds),
                      static_cast<unsigned long long>(run.fenced_rejections),
                      static_cast<unsigned long long>(again.fenced_rejections),
                      run.finished, again.finished, run.partitioned,
                      again.partitioned);
        what = buf;
      } else if (again.result_bytes != run.result_bytes) {
        what = "replay diverged: result bytes";
      }
    }
    if (!what.empty()) report(seed, "mc", what, chaos::plan_to_text(plan));
    if (flags.get_bool("verbose", false)) {
      std::printf(
          "mc seed %llu: %s makespan=%.6f finished=%zu crashed=%zu hung=%zu "
          "partitioned=%zu lineage=%llu fenced=%llu%s%s\n",
          static_cast<unsigned long long>(seed),
          run.completed ? "completed" : "aborted ", run.makespan,
          run.finished, run.crashed, run.hung, run.partitioned,
          static_cast<unsigned long long>(run.lineage_rebuilds),
          static_cast<unsigned long long>(run.fenced_rejections),
          run.error.empty() ? "" : " error=", run.error.c_str());
    }
  }

  // --- threads leg ---
  std::size_t exec_completed = 0, exec_aborted = 0, joint_agree = 0;
  for (const auto& [seed, plan] : exec_plans) {
    const chaos::ExecChaosOptions run_options = exec_options_for(seed);
    if (flags.get_bool("print-plan", false)) {
      std::fputs(exec::exec_plan_to_text(plan).c_str(), stdout);
    }
    const chaos::ExecChaosRun run = chaos::run_exec_plan(db, plan,
                                                         run_options);
    std::string what;
    if (run.completed) {
      ++exec_completed;
      if (run.result_bytes != reference.result_bytes) {
        what = "completed threads run diverged from the fault-free "
               "reference bytes";
      }
    } else if (run.clean_abort) {
      ++exec_aborted;
    } else {
      what = "unexpected abort: " + run.error;
    }
    // Budget runs honor the byte-identical-or-clean-abort contract but
    // their degradation history (and hence retry counters and which
    // class quarantines first) may vary with interleaving, so only
    // budget-free plans are required to replay exactly.
    if (what.empty() && flags.get_bool("replay-check", true) &&
        run_options.mem_budget == 0) {
      const chaos::ExecChaosRun again = chaos::run_exec_plan(db, plan,
                                                             run_options);
      if (again.completed != run.completed) {
        what = "replay diverged: completed flag";
      } else if (again.clean_abort != run.clean_abort) {
        what = "replay diverged: clean_abort flag";
      } else if (again.error != run.error) {
        what = "replay diverged: error '" + run.error + "' vs '" +
               again.error + "'";
      } else if (again.failures != run.failures ||
                 again.retries != run.retries ||
                 again.reclaims != run.reclaims) {
        char buf[192];
        std::snprintf(
            buf, sizeof(buf),
            "replay diverged: failures %llu vs %llu, retries %llu vs "
            "%llu, reclaims %llu vs %llu",
            static_cast<unsigned long long>(run.failures),
            static_cast<unsigned long long>(again.failures),
            static_cast<unsigned long long>(run.retries),
            static_cast<unsigned long long>(again.retries),
            static_cast<unsigned long long>(run.reclaims),
            static_cast<unsigned long long>(again.reclaims));
        what = buf;
      } else if (again.result_bytes != run.result_bytes) {
        what = "replay diverged: result bytes";
      }
    }
    if (!what.empty()) {
      report(seed, "threads", what, exec::exec_plan_to_text(plan));
    }
    // Joint diff (--backend=both): both legs already byte-check against
    // the same reference, so cross-backend divergence on a completed
    // pair is impossible without a violation above; the diff reports how
    // the two failure domains resolved the same seed.
    if (const auto it = mc_outcome.find(seed); it != mc_outcome.end()) {
      const char exec_code = run.completed ? 'c' : run.clean_abort ? 'a' : '!';
      if (it->second == exec_code) ++joint_agree;
      if (flags.get_bool("verbose", false)) {
        std::printf("both seed %llu: mc=%c threads=%c\n",
                    static_cast<unsigned long long>(seed), it->second,
                    exec_code);
      }
    }
    if (flags.get_bool("verbose", false)) {
      std::printf(
          "threads seed %llu: %s threads=%zu scheduler=%s failures=%llu "
          "retries=%llu reclaims=%llu%s%s\n",
          static_cast<unsigned long long>(seed),
          run.completed ? "completed" : "aborted ", run_options.threads,
          exec::to_string(run_options.scheduler),
          static_cast<unsigned long long>(run.failures),
          static_cast<unsigned long long>(run.retries),
          static_cast<unsigned long long>(run.reclaims),
          run.error.empty() ? "" : " error=", run.error.c_str());
    }
  }

  if (run_mc_leg) {
    std::printf(
        "chaos[mc]: %zu plans, %zu completed (byte-checked), %zu clean "
        "aborts, %zu violations\n",
        plans.size(), completed, aborted,
        static_cast<std::size_t>(std::count_if(
            violations.begin(), violations.end(),
            [](const Violation& v) { return v.backend == "mc"; })));
  }
  if (run_exec_leg) {
    std::printf(
        "chaos[threads]: %zu plans, %zu completed (byte-checked), %zu clean "
        "aborts, %zu violations\n",
        exec_plans.size(), exec_completed, exec_aborted,
        static_cast<std::size_t>(std::count_if(
            violations.begin(), violations.end(),
            [](const Violation& v) { return v.backend == "threads"; })));
  }
  if (run_mc_leg && run_exec_leg) {
    std::printf("chaos[both]: %zu/%zu seeds resolved identically across "
                "backends\n",
                joint_agree, exec_plans.size());
  }
  return violations.empty() ? 0 : 1;
}
