#include "chaos.hpp"

#include <algorithm>
#include <cstdio>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"
#include "data/result_io.hpp"
#include "exec/thread_backend.hpp"
#include "gen/quest.hpp"
#include "mc/cluster.hpp"

namespace eclat::chaos {

namespace {

using mc::FaultEvent;
using mc::FaultKind;
using mc::FaultOp;
using mc::FaultPlan;

// Sites the generator aims faults at. Op/phase combinations that never
// occur in the pipeline simply never fire — a harmless no-op event.
constexpr FaultOp kSiteOps[] = {
    FaultOp::kCompute,  FaultOp::kDiskRead, FaultOp::kDiskWrite,
    FaultOp::kBarrier,  FaultOp::kSumReduce, FaultOp::kAllToAll,
    FaultOp::kAllGather, FaultOp::kPoint,
};

constexpr const char* kPhases[] = {
    "", "initialization", "transformation", "asynchronous", "reduction",
};

/// Mirror of validate_plan's single-owner trigger identity: two
/// count-triggered events with the same signature would race one counter.
std::string trigger_signature(const FaultEvent& event) {
  return std::to_string(static_cast<int>(event.kind)) + "|" +
         std::to_string(event.processor) + "|" + std::to_string(event.peer) +
         "|" + std::to_string(static_cast<int>(event.op)) + "|" +
         event.phase + "|" + event.label + "|" +
         std::to_string(event.after_calls);
}

}  // namespace

mc::FaultPlan generate_plan(std::uint64_t seed, const ChaosKnobs& knobs) {
  Rng rng(seed ^ 0xC4A05C4A05C4A05CULL);
  const std::size_t total = knobs.total_processors;
  FaultPlan plan;
  plan.seed = seed;

  std::vector<FaultKind> kinds;
  if (knobs.crashes) kinds.push_back(FaultKind::kCrash);
  if (knobs.hangs) kinds.push_back(FaultKind::kHang);
  if (knobs.stalls) kinds.push_back(FaultKind::kDiskStall);
  if (knobs.corruptions) kinds.push_back(FaultKind::kCorruptMessage);
  if (knobs.hub_degrades) kinds.push_back(FaultKind::kHubDegrade);
  if (knobs.partitions) kinds.push_back(FaultKind::kPartition);
  if (kinds.empty() || total < 2) return plan;

  const double hint = knobs.makespan_hint > 0 ? knobs.makespan_hint : 1.0;
  const std::size_t span = knobs.max_events >= knobs.min_events
                               ? knobs.max_events - knobs.min_events + 1
                               : 1;
  const std::size_t count = knobs.min_events + rng.below(span);

  std::set<std::string> used_triggers;
  for (std::size_t i = 0; i < count; ++i) {
    const FaultKind kind = kinds[rng.below(kinds.size())];
    FaultEvent event;
    switch (kind) {
      case FaultKind::kCrash:
      case FaultKind::kHang: {
        const std::size_t proc = rng.below(total);
        const bool timed = rng.below(4) == 0;
        if (timed) {
          event = kind == FaultKind::kCrash
                      ? FaultPlan::crash_at_time(proc, rng.uniform(0.0, hint))
                      : FaultPlan::hang_at_time(proc, rng.uniform(0.0, hint));
        } else {
          const FaultOp op = kSiteOps[rng.below(std::size(kSiteOps))];
          const std::string phase =
              op == FaultOp::kPoint ? "" : kPhases[rng.below(std::size(kPhases))];
          const std::string label =
              op == FaultOp::kPoint ? "class-checkpointed" : "";
          const std::size_t after = rng.below(3);
          event = kind == FaultKind::kCrash
                      ? FaultPlan::crash(proc, op, phase, after)
                      : FaultPlan::hang(proc, op, phase, after);
          event.label = label;
        }
        if (kind == FaultKind::kHang && rng.below(2) == 0) {
          event.duration = rng.uniform(0.0, 0.5 * hint);  // hang-then-resume
        }
        break;
      }
      case FaultKind::kDiskStall: {
        event = FaultPlan::disk_stall(rng.below(total),
                                      rng.uniform(2.0, 12.0),
                                      kPhases[rng.below(std::size(kPhases))],
                                      rng.below(2) == 0);
        break;
      }
      case FaultKind::kCorruptMessage: {
        // Explicit dst *and* src so retransmission re-probes stay
        // deterministic (see FaultInjector's thread-safety contract).
        const std::size_t dst = rng.below(total);
        const std::size_t src = (dst + 1 + rng.below(total - 1)) % total;
        event = FaultPlan::corrupt_message(
            dst, src, rng.below(2),
            static_cast<double>(1 + rng.below(16)));
        break;
      }
      case FaultKind::kHubDegrade: {
        event = FaultPlan::hub_degrade(rng.uniform(2.0, 8.0),
                                       rng.uniform(0.0, hint),
                                       rng.uniform(0.05 * hint, 0.3 * hint));
        break;
      }
      case FaultKind::kCorruptRegion:
        continue;  // par_eclat issues no raw region writes; nothing to aim at
      case FaultKind::kPartition: {
        const std::size_t side = 1 + rng.below(total - 1);
        std::vector<std::size_t> order(total);
        for (std::size_t p = 0; p < total; ++p) order[p] = p;
        for (std::size_t p = total; p > 1; --p) {
          std::swap(order[p - 1], order[rng.below(p)]);
        }
        std::vector<std::size_t> members(order.begin(), order.begin() + side);
        std::sort(members.begin(), members.end());
        event = FaultPlan::partition(std::move(members),
                                     rng.uniform(0.0, hint),
                                     rng.uniform(0.05 * hint, 0.5 * hint));
        break;
      }
    }

    // Keep count-triggered events off each other's single-owner trigger
    // counters (validate_plan would reject the ambiguity): bump
    // after_calls until the signature is free, dropping the event if a
    // few bumps cannot free it.
    if (event.at_time < 0 && event.kind != FaultKind::kHubDegrade) {
      bool placed = false;
      for (std::size_t bump = 0; bump < 8; ++bump) {
        if (used_triggers.insert(trigger_signature(event)).second) {
          placed = true;
          break;
        }
        ++event.after_calls;
      }
      if (!placed) continue;
    }
    plan.events.push_back(std::move(event));
  }

  // The generator's construction rules mirror validate_plan; make the
  // mirror impossible to break silently.
  mc::validate_plan(plan, total);
  return plan;
}

namespace {

const char* op_name(FaultOp op) { return mc::to_string(op); }

FaultOp op_from_name(const std::string& name, std::size_t line_no) {
  for (const FaultOp op :
       {FaultOp::kAny, FaultOp::kCompute, FaultOp::kDiskRead,
        FaultOp::kDiskWrite, FaultOp::kBarrier, FaultOp::kSumReduce,
        FaultOp::kBroadcast, FaultOp::kAllToAll, FaultOp::kAllGather,
        FaultOp::kRegionWrite, FaultOp::kPoint}) {
    if (name == mc::to_string(op)) return op;
  }
  throw std::invalid_argument("chaos plan line " + std::to_string(line_no) +
                              ": unknown op '" + name + "'");
}

FaultKind kind_from_name(const std::string& name, std::size_t line_no) {
  for (const FaultKind kind :
       {FaultKind::kCrash, FaultKind::kDiskStall, FaultKind::kHang,
        FaultKind::kCorruptMessage, FaultKind::kCorruptRegion,
        FaultKind::kHubDegrade, FaultKind::kPartition}) {
    if (name == mc::to_string(kind)) return kind;
  }
  throw std::invalid_argument("chaos plan line " + std::to_string(line_no) +
                              ": unknown fault kind '" + name + "'");
}

}  // namespace

std::string plan_to_text(const mc::FaultPlan& plan) {
  std::ostringstream out;
  out << "seed " << plan.seed << "\n";
  for (const FaultEvent& e : plan.events) {
    out << "event kind=" << mc::to_string(e.kind)
        << " processor=" << e.processor << " peer=" << e.peer
        << " op=" << op_name(e.op) << " phase=" << e.phase
        << " label=" << e.label << " after_calls=" << e.after_calls;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), " at_time=%.17g", e.at_time);
    out << buffer;
    std::snprintf(buffer, sizeof(buffer), " severity=%.17g", e.severity);
    out << buffer;
    out << " persistent=" << (e.persistent ? 1 : 0);
    std::snprintf(buffer, sizeof(buffer), " duration=%.17g", e.duration);
    out << buffer;
    out << " members=";
    for (std::size_t i = 0; i < e.members.size(); ++i) {
      if (i > 0) out << ',';
      out << e.members[i];
    }
    out << "\n";
  }
  return out.str();
}

mc::FaultPlan plan_from_text(const std::string& text) {
  FaultPlan plan;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  bool saw_seed = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream tokens(line);
    std::string head;
    tokens >> head;
    if (head == "seed") {
      if (!(tokens >> plan.seed)) {
        throw std::invalid_argument("chaos plan line " +
                                    std::to_string(line_no) +
                                    ": seed needs an unsigned value");
      }
      saw_seed = true;
      continue;
    }
    if (head != "event") {
      throw std::invalid_argument("chaos plan line " + std::to_string(line_no) +
                                  ": expected 'seed' or 'event', got '" +
                                  head + "'");
    }
    FaultEvent event;
    std::string token;
    while (tokens >> token) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("chaos plan line " +
                                    std::to_string(line_no) +
                                    ": expected key=value, got '" + token +
                                    "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      // stoull/stod throw bare std::invalid_argument("stoull") on junk —
      // wrap them so every diagnostic names the offending line and key.
      const auto bad_value = [&]() {
        return std::invalid_argument("chaos plan line " +
                                     std::to_string(line_no) +
                                     ": bad value '" + value + "' for key '" +
                                     key + "'");
      };
      const auto as_ull = [&](const std::string& digits) -> std::uint64_t {
        try {
          return std::stoull(digits);
        } catch (const std::exception&) {
          throw bad_value();
        }
      };
      const auto as_double = [&](const std::string& digits) -> double {
        try {
          return std::stod(digits);
        } catch (const std::exception&) {
          throw bad_value();
        }
      };
      if (key == "kind") {
        event.kind = kind_from_name(value, line_no);
      } else if (key == "processor") {
        event.processor = as_ull(value);
      } else if (key == "peer") {
        event.peer = as_ull(value);
      } else if (key == "op") {
        event.op = op_from_name(value, line_no);
      } else if (key == "phase") {
        event.phase = value;
      } else if (key == "label") {
        event.label = value;
      } else if (key == "after_calls") {
        event.after_calls = as_ull(value);
      } else if (key == "at_time") {
        event.at_time = as_double(value);
      } else if (key == "severity") {
        event.severity = as_double(value);
      } else if (key == "persistent") {
        event.persistent = as_ull(value) != 0;
      } else if (key == "duration") {
        event.duration = as_double(value);
      } else if (key == "members") {
        event.members.clear();
        std::istringstream list(value);
        std::string member;
        while (std::getline(list, member, ',')) {
          if (!member.empty()) event.members.push_back(as_ull(member));
        }
      } else {
        throw std::invalid_argument("chaos plan line " +
                                    std::to_string(line_no) +
                                    ": unknown key '" + key + "'");
      }
    }
    plan.events.push_back(std::move(event));
  }
  if (!saw_seed) {
    throw std::invalid_argument("chaos plan: missing 'seed' line");
  }
  return plan;
}

namespace {

/// Diagnostics a compound schedule may legitimately end a run with. Any
/// other exception out of the pipeline is an invariant violation the
/// sweep must surface.
bool is_expected_abort(const std::string& error) {
  return error.find("sender suspected") != std::string::npos ||
         error == "no survivors";
}

}  // namespace

ChaosRun run_plan(const HorizontalDatabase& db, const mc::FaultPlan& plan,
                  const ChaosOptions& options, mc::Trace* trace) {
  ChaosRun out;
  // Modeled time only: with cpu_scale != 0 the cluster folds measured
  // host-CPU time into virtual clocks and replays stop being exact.
  mc::CostModel cost;
  cost.cpu_scale = 0.0;
  mc::Cluster cluster(options.topology, cost);
  cluster.set_fault_plan(plan);
  if (trace != nullptr) cluster.set_trace(trace);
  par::ParEclatConfig config;
  config.minsup = options.minsup;
  config.replication = options.replication;
  config.lease.speculate = options.speculate;

  auto fold_report = [&](const mc::RunReport& report) {
    for (const mc::ProcessorOutcome outcome : report.outcomes) {
      switch (outcome) {
        case mc::ProcessorOutcome::kFinished: ++out.finished; break;
        case mc::ProcessorOutcome::kCrashed: ++out.crashed; break;
        case mc::ProcessorOutcome::kHung: ++out.hung; break;
        case mc::ProcessorOutcome::kPartitioned: ++out.partitioned; break;
        case mc::ProcessorOutcome::kAborted: break;
      }
    }
  };

  try {
    const par::ParallelOutput output = par::par_eclat(cluster, db, config);
    fold_report(output.run_report);
    out.makespan = output.total_seconds;
    out.lineage_rebuilds = output.lineage_rebuilds;
    out.fenced_rejections = output.fenced_rejections;
    out.image_bytes = output.image_bytes;
    out.replica_copies = output.replica_copies;
    if (out.finished > 0) {
      out.completed = true;
      out.result_bytes = result_to_bytes(output.result);
    } else {
      out.clean_abort = true;
      out.error = "no survivors";
    }
  } catch (const std::exception& e) {
    out.error = e.what();
    out.makespan = cluster.makespan();
    fold_report(cluster.last_run_report());
    out.clean_abort = is_expected_abort(out.error);
  }
  return out;
}

exec::ExecFaultPlan generate_exec_plan(std::uint64_t seed,
                                       const ExecChaosKnobs& knobs) {
  // Distinct stream constant from generate_plan: the same sweep seed
  // drives independent mc and exec schedules.
  Rng rng(seed ^ 0xE7ECFA017E7ECFAULL);
  exec::ExecFaultPlan plan;
  plan.seed = seed;

  std::vector<exec::ExecFaultKind> kinds;
  if (knobs.throws) kinds.push_back(exec::ExecFaultKind::kThrow);
  if (knobs.corrupts) kinds.push_back(exec::ExecFaultKind::kCorrupt);
  if (knobs.stalls) kinds.push_back(exec::ExecFaultKind::kStall);
  if (kinds.empty()) return plan;

  const std::size_t span = knobs.max_events >= knobs.min_events
                               ? knobs.max_events - knobs.min_events + 1
                               : 1;
  const std::size_t count = knobs.min_events + rng.below(span);
  const std::uint32_t max_times = knobs.max_times > 0 ? knobs.max_times : 1;
  for (std::size_t i = 0; i < count; ++i) {
    const exec::ExecFaultKind kind = kinds[rng.below(kinds.size())];
    const std::uint32_t times =
        1 + static_cast<std::uint32_t>(rng.below(max_times));
    if (rng.below(4) == 0) {
      // Explicit low class id: a harmless no-op when the database has
      // fewer classes, like an mc fault site the pipeline never visits.
      exec::ExecFaultEvent event;
      event.kind = kind;
      event.class_id = rng.below(6);
      event.times = times;
      plan.events.push_back(event);
    } else {
      // Hash selector: generalizes over any class count, hits ~1/mod of
      // the classes — the workhorse of generated schedules.
      const std::uint64_t mod = 2 + rng.below(9);
      plan.events.push_back(
          exec::ExecFaultPlan::hashed(kind, mod, rng.below(mod), times));
    }
  }

  // The generator's construction rules mirror validate_exec_plan; make
  // the mirror impossible to break silently.
  exec::validate_exec_plan(plan);
  return plan;
}

ExecChaosRun run_exec_plan(const HorizontalDatabase& db,
                           const exec::ExecFaultPlan& plan,
                           const ExecChaosOptions& options) {
  ExecChaosRun out;
  exec::ThreadBackendOptions backend_options;
  backend_options.threads = options.threads;
  backend_options.scheduler = options.scheduler;
  backend_options.max_retries = options.max_retries;
  backend_options.mem_budget = options.mem_budget;
  backend_options.faults = plan;
  exec::ThreadBackend backend(backend_options);
  par::ParEclatConfig config;
  config.minsup = options.minsup;
  try {
    const par::ParallelOutput output = backend.mine(db, config);
    out.completed = true;
    out.failures = output.exec_task_failures;
    out.retries = output.exec_task_retries;
    out.reclaims = output.exec_stall_reclaims;
    out.result_bytes = result_to_bytes(output.result);
  } catch (const exec::ExecClassQuarantined& e) {
    // The one *expected* abort of a threads run: a class exceeded its
    // retry budget. Anything else escaping is an invariant violation.
    out.clean_abort = true;
    out.error = e.what();
  } catch (const std::exception& e) {
    out.error = e.what();
  }
  return out;
}

HorizontalDatabase chaos_database(std::uint64_t seed,
                                  std::size_t transactions) {
  gen::QuestConfig config;
  config.num_transactions = transactions;
  config.num_items = 40;     // small alphabet => several multi-pair classes
  config.num_patterns = 12;
  config.avg_transaction_length = 8.0;
  config.avg_pattern_length = 4.0;
  config.seed = seed;
  return gen::QuestGenerator(config).generate();
}

}  // namespace eclat::chaos
