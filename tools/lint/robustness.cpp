// Robustness analyzer: a swallowed exception is a silently dropped class
// result, which breaks the byte-identical-or-clean-abort contract — a
// failure must either unwind (and be accounted by the caller) or be
// converted into a typed, retry-accounted TaskError at the single
// isolation boundary (src/exec/fault_capture.hpp).
//
// Rule:
//   robust-catch  bare `catch (...)` whose handler neither rethrows
//                 (`throw` / std::rethrow_exception), captures the
//                 exception (std::current_exception), nor routes through
//                 capture_class_failure. Typed handlers (catch (const
//                 std::exception&)) are out of scope: they at least prove
//                 the author knew what they were discarding.
#include "lint.hpp"

#include <cstddef>

namespace eclat::lint {

namespace {

/// Identifiers whose presence anywhere in the handler block counts as
/// routing the exception somewhere accountable rather than dropping it.
bool routes_exception(const Token& tok) {
  return tok.kind == TokKind::kIdentifier &&
         (tok.text == "throw" || tok.text == "rethrow_exception" ||
          tok.text == "current_exception" ||
          tok.text == "capture_class_failure");
}

}  // namespace

void analyze_robustness(const SourceFile& file,
                        std::vector<Finding>& findings) {
  const std::vector<Token>& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // `...` lexes as three '.' punctuation tokens.
    if (!is_ident(toks, i, "catch") || !is_punct(toks, i + 1, "(") ||
        !is_punct(toks, i + 2, ".") || !is_punct(toks, i + 3, ".") ||
        !is_punct(toks, i + 4, ".") || !is_punct(toks, i + 5, ")") ||
        !is_punct(toks, i + 6, "{")) {
      continue;
    }
    std::size_t depth = 0;
    bool routed = false;
    for (std::size_t j = i + 6; j < toks.size(); ++j) {
      if (is_punct(toks, j, "{")) {
        ++depth;
      } else if (is_punct(toks, j, "}")) {
        if (--depth == 0) break;
      } else if (routes_exception(toks[j])) {
        routed = true;
      }
    }
    if (!routed) {
      findings.push_back(
          {file.path, toks[i].line, "robust-catch",
           "bare catch (...) swallows the exception",
           "rethrow (`throw;`), capture it (std::current_exception) for a "
           "post-join rethrow, or route the task through "
           "capture_class_failure (src/exec/fault_capture.hpp)",
           false, ""});
    }
  }
}

}  // namespace eclat::lint
