// Layering analyzer: the src/ tree is a declared DAG of modules (first
// directory level under src/). An #include whose edge is not in the DAG is
// rejected — so is any include cycle, module-level or file-level. Keeping
// the DAG explicit here (not implicit in reviewers' heads) is what lets the
// localized-Eclat argument stay auditable: the deterministic simulator (mc)
// must never reach up into the algorithms that run on it, and the
// sequential mining core must never know about the parallel substrate.
//
// Rules:
//   layer-violation  include edge absent from the declared module DAG
//   layer-unknown    file in a src/ module the DAG does not declare
//   layer-cycle      cycle in the file-level include graph
//   isa-intrinsics   ISA-specific intrinsics outside src/vertical/simd/
//
// isa-intrinsics is the runtime-dispatch contract in rule form: the only
// place architecture intrinsics (or their headers) may appear is the
// per-ISA kernel TUs, which are compiled with per-file -m flags and
// installed behind the CPUID dispatch in simd/dispatch.cpp. An intrinsic
// anywhere else either crashes on older hardware (the TU's baseline is
// the build machine's) or silently forks the scalar/SIMD byte-identity
// guarantee.
#include "lint.hpp"

#include <algorithm>
#include <map>

namespace eclat::lint {

namespace {

/// The declared module DAG: module -> modules it may include. A module may
/// always include itself. Order here is bottom-up for readability.
const std::map<std::string, std::set<std::string>>& layer_dag() {
  static const std::map<std::string, std::set<std::string>> dag = {
      // Foundations.
      {"common", {}},
      {"data", {"common"}},
      // The deterministic cluster simulator: pure substrate. It must not
      // know any mining code exists.
      {"mc", {"common"}},
      // Vertical representation + kernels.
      {"vertical", {"common", "data"}},
      {"hashtree", {"common", "data"}},
      {"gen", {"common", "data"}},
      // Sequential mining layers.
      {"apriori", {"common", "data", "vertical", "hashtree"}},
      {"rules", {"common", "apriori"}},
      {"eclat", {"common", "data", "vertical", "apriori"}},
      {"clique", {"common", "data", "vertical", "apriori", "eclat"}},
      {"partition", {"common", "data", "apriori", "eclat", "hashtree"}},
      {"sampling",
       {"common", "data", "vertical", "apriori", "eclat", "hashtree"}},
      // Parallel algorithms: everything sequential plus the mc substrate.
      {"parallel",
       {"common", "data", "vertical", "apriori", "eclat", "hashtree", "mc"}},
      // Execution backends: places the backend-independent pipeline
      // (parallel/pipeline.hpp) on a substrate — the mc simulator or the
      // native thread pool. The only src module where real threading
      // primitives are legal (see determinism.cpp).
      {"exec",
       {"common", "data", "vertical", "apriori", "eclat", "hashtree", "mc",
        "parallel"}},
      // Public API: the only module allowed to see the whole tree.
      {"api",
       {"common", "data", "vertical", "apriori", "eclat", "hashtree", "mc",
        "parallel", "exec", "partition", "rules", "sampling", "clique",
        "gen"}},
  };
  return dag;
}

std::string module_of_include(const std::string& include) {
  const std::size_t slash = include.find('/');
  if (slash == std::string::npos) return "";
  return include.substr(0, slash);
}

/// Headers that pull in ISA-specific intrinsics. Including any of these
/// outside the simd subtree is a finding even before an intrinsic is used.
const std::set<std::string>& isa_headers() {
  static const std::set<std::string> headers = {
      "immintrin.h",  "x86intrin.h", "mmintrin.h",  "xmmintrin.h",
      "emmintrin.h",  "pmmintrin.h", "tmmintrin.h", "smmintrin.h",
      "nmmintrin.h",  "wmmintrin.h", "ammintrin.h", "cpuid.h",
      "arm_neon.h",   "arm_sve.h",
  };
  return headers;
}

/// Identifier prefixes that only intrinsics (or their vector types) carry.
bool is_intrinsic_ident(const std::string& text) {
  static const char* kPrefixes[] = {
      "_mm_",    "_mm256_", "_mm512_", "__m64",  "__m128",
      "__m256",  "__m512",  "__mmask", "__builtin_ia32_",
  };
  for (const char* p : kPrefixes) {
    if (text.rfind(p, 0) == 0) return true;
  }
  return false;
}

void analyze_isa_confinement(const SourceFile& file,
                             std::vector<Finding>& findings) {
  if (file.path.rfind("src/vertical/simd/", 0) == 0) return;
  for (std::size_t k = 0; k < file.system_includes.size(); ++k) {
    if (isa_headers().count(file.system_includes[k]) == 0) continue;
    findings.push_back(
        {file.path, file.system_include_lines[k], "isa-intrinsics",
         "ISA intrinsics header <" + file.system_includes[k] +
             "> outside src/vertical/simd/",
         "intrinsics live only in the per-ISA kernel TUs behind the "
         "runtime dispatch; call through simd::kernels() (add a kernel "
         "entry point if none fits)",
         false, ""});
  }
  for (std::size_t i = 0; i < file.tokens.size(); ++i) {
    const Token& tok = file.tokens[i];
    if (tok.kind != TokKind::kIdentifier) continue;
    if (!is_intrinsic_ident(tok.text)) continue;
    if (is_member_or_foreign_qualified(file.tokens, i)) continue;
    findings.push_back(
        {file.path, tok.line, "isa-intrinsics",
         "ISA intrinsic '" + tok.text + "' outside src/vertical/simd/",
         "intrinsics live only in the per-ISA kernel TUs behind the "
         "runtime dispatch; call through simd::kernels() (add a kernel "
         "entry point if none fits)",
         false, ""});
  }
}

}  // namespace

void analyze_layering(const std::vector<SourceFile>& files,
                      std::vector<Finding>& findings) {
  const auto& dag = layer_dag();

  // --- ISA confinement (every scanned file, tests/bench included) ---
  for (const SourceFile& file : files) {
    analyze_isa_confinement(file, findings);
  }

  // --- module-DAG edges (src/ files only) ---
  for (const SourceFile& file : files) {
    if (file.module.empty()) continue;  // tests/bench/examples: unrestricted
    const auto self = dag.find(file.module);
    if (self == dag.end()) {
      findings.push_back(
          {file.path, 1, "layer-unknown",
           "module 'src/" + file.module + "' is not in the declared layer "
           "DAG",
           "declare the module and its allowed dependencies in "
           "tools/lint/layering.cpp (and DESIGN.md §8.2)",
           false, ""});
      continue;
    }
    for (std::size_t k = 0; k < file.local_includes.size(); ++k) {
      const std::string dep = module_of_include(file.local_includes[k]);
      if (dep.empty() || dep == file.module) continue;
      if (dag.find(dep) == dag.end()) continue;  // not a src module path
      if (self->second.count(dep) == 0) {
        findings.push_back(
            {file.path, file.local_include_lines[k], "layer-violation",
             "src/" + file.module + " may not include src/" + dep + " (\"" +
                 file.local_includes[k] + "\")",
             "allowed deps of '" + file.module + "' per the declared DAG; "
             "move the shared piece down a layer or re-route through an "
             "allowed one",
             false, ""});
      }
    }
  }

  // --- file-level include cycles ---
  // Nodes: root-relative paths of scanned files. Edges: resolved local
  // includes (quoted includes are src/-relative in this tree).
  std::map<std::string, std::vector<std::string>> graph;
  std::map<std::string, int> include_line;
  std::set<std::string> known;
  for (const SourceFile& file : files) known.insert(file.path);
  for (const SourceFile& file : files) {
    for (std::size_t k = 0; k < file.local_includes.size(); ++k) {
      const std::string target = "src/" + file.local_includes[k];
      if (known.count(target) == 0) continue;
      graph[file.path].push_back(target);
      include_line[file.path + "->" + target] = file.local_include_lines[k];
    }
  }

  // Iterative DFS with tricolor marking; report each cycle once, at the
  // back-edge source.
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack_path;
  std::set<std::string> reported;

  // Recursive lambda via explicit stack to stay robust on deep graphs.
  struct Frame {
    std::string node;
    std::size_t next = 0;
  };
  for (const SourceFile& file : files) {
    if (color[file.path] != 0) continue;
    std::vector<Frame> stack;
    stack.push_back({file.path});
    color[file.path] = 1;
    stack_path.push_back(file.path);
    while (!stack.empty()) {
      Frame& frame = stack.back();
      const auto edges = graph.find(frame.node);
      if (edges == graph.end() || frame.next >= edges->second.size()) {
        color[frame.node] = 2;
        stack_path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string next = edges->second[frame.next++];
      if (color[next] == 1) {
        // Back edge: frame.node -> next closes a cycle.
        const std::string key = frame.node + "->" + next;
        if (reported.insert(key).second) {
          std::string chain = next;
          const auto begin = std::find(stack_path.begin(), stack_path.end(),
                                       next);
          for (auto it = begin + 1; it != stack_path.end(); ++it) {
            chain += " -> " + *it;
          }
          chain += " -> " + next;
          findings.push_back(
              {frame.node, include_line[key], "layer-cycle",
               "include cycle: " + chain,
               "break the cycle with a forward declaration or by splitting "
               "the shared type into a lower-layer header",
               false, ""});
        }
      } else if (color[next] == 0) {
        color[next] = 1;
        stack_path.push_back(next);
        stack.push_back({next});
      }
    }
  }
}

}  // namespace eclat::lint
