// Suppression matching. A finding is suppressed by a comment naming its
// rule id either file-wide (`allow-file`) or on the finding's line / the
// line directly above (`allow`). Justifications are mandatory: the point of
// an inline suppression is to move the reviewer argument into the tree, so
// an empty justification — or a rule id the tool does not know — is itself
// a finding (lint-suppression), and that finding cannot be suppressed.
#include "lint.hpp"

#include <algorithm>

namespace eclat::lint {

const std::set<std::string>& known_rule_ids() {
  static const std::set<std::string> ids = {
      "det-wallclock",   "det-random",     "det-thread",
      "det-ptr-key",     "det-unordered-iter",
      "layer-violation", "layer-unknown",  "layer-cycle",
      "contract-assert", "contract-abort", "contract-cast",
      "contract-memcpy", "robust-catch",   "isa-intrinsics",
      "lint-suppression",
  };
  return ids;
}

std::string analyzer_of(const std::string& id) {
  if (id.rfind("det-", 0) == 0) return "determinism";
  if (id.rfind("layer-", 0) == 0) return "layering";
  if (id.rfind("contract-", 0) == 0) return "contracts";
  if (id.rfind("robust-", 0) == 0) return "robustness";
  if (id.rfind("isa-", 0) == 0) return "isa";
  return "suppression";
}

void apply_suppressions(std::vector<SourceFile>& files,
                        std::vector<Finding>& findings) {
  for (SourceFile& file : files) {
    // Match this file's findings against this file's suppressions.
    for (Finding& finding : findings) {
      if (finding.path != file.path) continue;
      for (Suppression& sup : file.suppressions) {
        if (std::find(sup.ids.begin(), sup.ids.end(), finding.id) ==
            sup.ids.end()) {
          continue;
        }
        if (sup.justification.empty()) continue;  // not a valid suppression
        const bool in_scope =
            sup.file_scope ||
            finding.line == sup.line || finding.line == sup.line + 1;
        if (!in_scope) continue;
        finding.suppressed = true;
        finding.justification = sup.justification;
        sup.used = true;
        break;
      }
    }

    // Malformed suppressions become findings of their own.
    for (const Suppression& sup : file.suppressions) {
      if (sup.ids.empty()) {
        findings.push_back(
            {file.path, sup.line, "lint-suppression",
             "malformed eclat-lint comment (expected "
             "`eclat-lint: allow(<rule-id>) <justification>`)",
             "name at least one rule id in the parens", false, ""});
        continue;
      }
      bool unknown = false;
      for (const std::string& id : sup.ids) {
        if (known_rule_ids().count(id) == 0) {
          findings.push_back(
              {file.path, sup.line, "lint-suppression",
               "suppression names unknown rule id '" + id + "'",
               "valid ids are listed in DESIGN.md §8 (and tools/lint/"
               "suppress.cpp)",
               false, ""});
          unknown = true;
        }
      }
      if (!unknown && sup.justification.empty()) {
        findings.push_back(
            {file.path, sup.line, "lint-suppression",
             "suppression without a justification",
             "append the reason after the closing paren: "
             "`// eclat-lint: allow(" + sup.ids.front() + ") <why>`",
             false, ""});
      }
    }
  }
}

}  // namespace eclat::lint
