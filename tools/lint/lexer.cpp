// Tokenizer for eclat-lint. Not a C++ parser: it splits a translation unit
// into identifier / number / punctuation / literal tokens with line numbers,
// strips comments and literal *contents* (so banned names inside strings or
// comments never fire), and harvests two side channels the analyzers need:
// #include directives and `eclat-lint:` suppression comments.
#include "lint.hpp"

#include <cctype>
#include <cstdio>

namespace eclat::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::string trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

/// Parse an `eclat-lint: allow(...)` / `allow-file(...)` comment body.
/// Returns true when the comment is a suppression at all (even a malformed
/// one — those are recorded with empty ids/justification so the tool can
/// report them instead of silently ignoring a typo).
bool parse_suppression(const std::string& comment, int line,
                       Suppression& out) {
  const std::string marker = "eclat-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string::npos) return false;
  std::string rest = trim(comment.substr(at + marker.size()));
  out.line = line;
  if (rest.rfind("allow-file", 0) == 0) {
    out.file_scope = true;
    rest = rest.substr(10);
  } else if (rest.rfind("allow", 0) == 0) {
    out.file_scope = false;
    rest = rest.substr(5);
  } else {
    return true;  // "eclat-lint:" followed by garbage: malformed suppression
  }
  rest = trim(rest);
  if (rest.empty() || rest[0] != '(') return true;
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) return true;
  // Comma-separated rule ids inside the parens.
  std::string ids = rest.substr(1, close - 1);
  std::size_t pos = 0;
  while (pos <= ids.size()) {
    const std::size_t comma = ids.find(',', pos);
    const std::string id =
        trim(ids.substr(pos, comma == std::string::npos ? std::string::npos
                                                        : comma - pos));
    if (!id.empty()) out.ids.push_back(id);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  out.justification = trim(rest.substr(close + 1));
  return true;
}

/// Handle one preprocessor line (already known to start with '#').
void parse_directive(const std::string& line, int line_no, SourceFile& file) {
  std::size_t i = 1;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (line.compare(i, 7, "include") != 0) return;
  i += 7;
  while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
    ++i;
  if (i >= line.size()) return;
  if (line[i] == '"') {
    const std::size_t end = line.find('"', i + 1);
    if (end == std::string::npos) return;
    file.local_includes.push_back(line.substr(i + 1, end - i - 1));
    file.local_include_lines.push_back(line_no);
  } else if (line[i] == '<') {
    const std::size_t end = line.find('>', i + 1);
    if (end == std::string::npos) return;
    file.system_includes.push_back(line.substr(i + 1, end - i - 1));
    file.system_include_lines.push_back(line_no);
  }
}

}  // namespace

SourceFile lex_file(const std::string& root_relative_path,
                    const std::string& contents) {
  SourceFile file;
  file.path = root_relative_path;
  if (root_relative_path.rfind("src/", 0) == 0) {
    const std::size_t slash = root_relative_path.find('/', 4);
    if (slash != std::string::npos) {
      file.module = root_relative_path.substr(4, slash - 4);
    }
  }

  const std::string& s = contents;
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the newline

  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n && i < s.size(); ++k, ++i) {
      if (s[i] == '\n') {
        ++line;
        at_line_start = true;
      }
    }
  };

  while (i < s.size()) {
    const char c = s[i];

    if (c == '\n') {
      advance(1);
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Preprocessor directive: consume the whole (possibly continued) line.
    if (c == '#' && at_line_start) {
      std::size_t end = i;
      while (end < s.size()) {
        if (s[end] == '\n' && (end == 0 || s[end - 1] != '\\')) break;
        ++end;
      }
      parse_directive(s.substr(i, end - i), line, file);
      advance(end - i);
      continue;
    }
    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
      std::size_t end = s.find('\n', i);
      if (end == std::string::npos) end = s.size();
      const std::string body = s.substr(i + 2, end - i - 2);
      Suppression sup;
      if (parse_suppression(body, line, sup)) {
        file.suppressions.push_back(sup);
      }
      advance(end - i);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
      const int start_line = line;
      std::size_t end = s.find("*/", i + 2);
      if (end == std::string::npos) end = s.size();
      const std::string body = s.substr(i + 2, end - i - 2);
      Suppression sup;
      if (parse_suppression(body, start_line, sup)) {
        file.suppressions.push_back(sup);
      }
      advance((end == s.size() ? end : end + 2) - i);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < s.size() && s[i + 1] == '"' &&
        (file.tokens.empty() ||
         !ident_char(s[i == 0 ? 0 : i - 1]))) {
      std::size_t p = i + 2;
      std::string delim;
      while (p < s.size() && s[p] != '(' && delim.size() < 16) {
        delim += s[p++];
      }
      const std::string closer = ")" + delim + "\"";
      std::size_t end = s.find(closer, p);
      end = (end == std::string::npos) ? s.size() : end + closer.size();
      file.tokens.push_back({TokKind::kString, "<raw-string>", line});
      advance(end - i);
      continue;
    }

    // String / char literal: contents dropped.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t p = i + 1;
      while (p < s.size() && s[p] != quote) {
        if (s[p] == '\\' && p + 1 < s.size()) ++p;
        ++p;
      }
      file.tokens.push_back({quote == '"' ? TokKind::kString : TokKind::kChar,
                             quote == '"' ? "<string>" : "<char>", line});
      advance((p < s.size() ? p + 1 : p) - i);
      continue;
    }

    if (ident_start(c)) {
      std::size_t p = i;
      while (p < s.size() && ident_char(s[p])) ++p;
      file.tokens.push_back({TokKind::kIdentifier, s.substr(i, p - i), line});
      advance(p - i);
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t p = i;
      while (p < s.size() &&
             (ident_char(s[p]) || s[p] == '.' || s[p] == '\'')) {
        ++p;
      }
      file.tokens.push_back({TokKind::kNumber, s.substr(i, p - i), line});
      advance(p - i);
      continue;
    }

    // Punctuation: emit `->` as one token (member access), everything else
    // as single characters (`::` is two ':' tokens; analyzers pair them).
    if (c == '-' && i + 1 < s.size() && s[i + 1] == '>') {
      file.tokens.push_back({TokKind::kPunct, "->", line});
      advance(2);
      continue;
    }
    file.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    advance(1);
  }

  return file;
}

bool is_ident(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kIdentifier &&
         toks[i].text == text;
}

bool is_punct(const std::vector<Token>& toks, std::size_t i,
              const char* text) {
  return i < toks.size() && toks[i].kind == TokKind::kPunct &&
         toks[i].text == text;
}

bool preceded_by_std(const std::vector<Token>& toks, std::size_t i) {
  return i >= 3 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":") &&
         is_ident(toks, i - 3, "std");
}

bool is_member_or_foreign_qualified(const std::vector<Token>& toks,
                                    std::size_t i) {
  if (i >= 1 &&
      (is_punct(toks, i - 1, ".") || is_punct(toks, i - 1, "->"))) {
    return true;
  }
  if (i >= 3 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":") &&
      toks[i - 3].kind == TokKind::kIdentifier && toks[i - 3].text != "std") {
    return true;
  }
  return false;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace eclat::lint
