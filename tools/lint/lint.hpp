// eclat-lint: project-specific static analysis for the parallel-Eclat tree.
//
// The repo's headline guarantee — mined output and makespans are replayable
// pure functions of (plan, seed) — rests on conventions no general-purpose
// tool checks. eclat-lint enforces them mechanically, over a real tokenizer
// (comments/strings stripped, identifiers exact) instead of grep:
//
//   determinism  det-wallclock, det-random, det-thread, det-ptr-key,
//                det-unordered-iter
//   layering     layer-violation, layer-unknown, layer-cycle
//   contracts    contract-assert, contract-abort, contract-cast,
//                contract-memcpy
//   robustness   robust-catch — bare `catch (...)` must rethrow, capture
//                the exception, or route through capture_class_failure
//   isa          isa-intrinsics — ISA intrinsics/headers confined to
//                src/vertical/simd/ (the runtime-dispatch contract)
//   (tool)       lint-suppression — malformed/unjustified suppressions
//
// Suppressions are inline comments, justification mandatory:
//   // eclat-lint: allow(det-thread) simulator substrate: procs are real threads
//   // eclat-lint: allow-file(det-thread) this file IS the threading substrate
// `allow` covers the same line or the next code line; `allow-file` covers the
// whole file. Every suppression is counted and surfaced in the report.
//
// See DESIGN.md §8 for the rule sets and the declared layer DAG.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace eclat::lint {

enum class TokKind { kIdentifier, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

/// One `// eclat-lint: allow(...)` / `allow-file(...)` comment.
struct Suppression {
  std::vector<std::string> ids;  ///< rule ids this comment allows
  std::string justification;     ///< required free text after the paren
  int line = 0;                  ///< line the comment sits on
  bool file_scope = false;       ///< allow-file(...)
  bool used = false;             ///< matched at least one finding
};

struct SourceFile {
  std::string path;    ///< root-relative, '/'-separated
  std::string module;  ///< first dir under src/ ("mc", ...); empty otherwise
  std::vector<Token> tokens;
  std::vector<std::string> local_includes;   ///< #include "x/y.hpp"
  std::vector<int> local_include_lines;      ///< parallel to local_includes
  std::vector<std::string> system_includes;  ///< #include <...>
  std::vector<int> system_include_lines;     ///< parallel to system_includes
  std::vector<Suppression> suppressions;
};

struct Finding {
  std::string path;
  int line = 0;
  std::string id;
  std::string message;
  std::string hint;
  bool suppressed = false;
  std::string justification;  ///< filled when suppressed
};

/// All rule ids a suppression may name; anything else is a typo and is
/// itself reported (lint-suppression).
const std::set<std::string>& known_rule_ids();

/// Analyzer family ("determinism", "layering", "contracts", "isa",
/// "suppression") derived from a rule id's prefix.
std::string analyzer_of(const std::string& id);

/// Tokenize one file: strips comments and string/char literals (recording
/// eclat-lint suppression comments), records #include lines, and derives
/// the src/ module from the path.
SourceFile lex_file(const std::string& root_relative_path,
                    const std::string& contents);

/// Determinism rules (per-file). `emission_path` marks files on the result
/// emission / wire-serialization path (see main.cpp for the definition).
void analyze_determinism(const SourceFile& file, bool emission_path,
                         std::vector<Finding>& findings);

/// Layering rules (whole-program: module DAG + include cycles).
void analyze_layering(const std::vector<SourceFile>& files,
                      std::vector<Finding>& findings);

/// Contract rules (per-file). `serialization_path` marks wire/result_io/io
/// files where unguarded reinterpret_cast/memcpy are rejected.
void analyze_contracts(const SourceFile& file, bool serialization_path,
                       std::vector<Finding>& findings);

/// Robustness rules (per-file): exception-swallowing handlers.
void analyze_robustness(const SourceFile& file,
                        std::vector<Finding>& findings);

/// Match findings against suppressions (marking both sides), then append
/// lint-suppression findings for unjustified or unknown-id suppressions.
/// lint-suppression findings are never themselves suppressible.
void apply_suppressions(std::vector<SourceFile>& files,
                        std::vector<Finding>& findings);

// --- helpers shared by analyzers ---

/// True when tokens[i] is an identifier with this exact text.
bool is_ident(const std::vector<Token>& toks, std::size_t i,
              const char* text);

/// True when tokens[i] is this punctuation text.
bool is_punct(const std::vector<Token>& toks, std::size_t i,
              const char* text);

/// True when tokens[i] is directly preceded by `std ::`.
bool preceded_by_std(const std::vector<Token>& toks, std::size_t i);

/// True when tokens[i] is preceded by `.` or `->` (member access) or by a
/// non-std `X ::` qualifier.
bool is_member_or_foreign_qualified(const std::vector<Token>& toks,
                                    std::size_t i);

std::string json_escape(const std::string& s);

}  // namespace eclat::lint
