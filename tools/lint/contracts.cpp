// Contracts analyzer: invariant failures must flow through the project's
// contract macros (src/common/check.hpp), and byte-level reinterpretation
// on the serialization paths must sit next to an explicit bounds guard.
//
// Rules:
//   contract-assert  raw assert(...) or <cassert>/<assert.h> include —
//                    compiled out by NDEBUG, so release builds silently
//                    drop the invariant; use ECLAT_CHECK / ECLAT_DCHECK
//   contract-abort   raw abort()/exit()/_Exit()/quick_exit()/terminate() —
//                    process death without file:line context; use
//                    ECLAT_CHECK(false) or ECLAT_UNREACHABLE
//   contract-cast    reinterpret_cast on a wire/result_io path with no
//                    adjacent guard (ECLAT_CHECK / ECLAT_DCHECK / throw
//                    within the preceding lines)
//   contract-memcpy  memcpy/memmove on a wire/result_io path with no
//                    adjacent guard
#include "lint.hpp"

#include <cstddef>

namespace eclat::lint {

namespace {

/// How far around an unguarded cast/copy we look for a guard. Backwards:
/// wide enough for a multi-line throw message, narrow enough that a guard
/// at the top of a long function does not excuse every copy below it.
/// Forwards: a short window for the stream-read idiom, where the bounds
/// check (`if (!stream) throw ...`) necessarily follows the read.
constexpr int kGuardWindowBefore = 12;
constexpr int kGuardWindowAfter = 4;

void add(std::vector<Finding>& findings, const SourceFile& file, int line,
         const char* id, const std::string& message,
         const std::string& hint) {
  findings.push_back({file.path, line, id, message, hint, false, ""});
}

}  // namespace

void analyze_contracts(const SourceFile& file, bool serialization_path,
                       std::vector<Finding>& findings) {
  const std::vector<Token>& toks = file.tokens;

  for (std::size_t k = 0; k < file.system_includes.size(); ++k) {
    const std::string& inc = file.system_includes[k];
    if (inc == "cassert" || inc == "assert.h") {
      add(findings, file, file.system_include_lines[k], "contract-assert",
          "#include <" + inc + ">",
          "use ECLAT_CHECK / ECLAT_DCHECK from common/check.hpp; assert() "
          "vanishes under NDEBUG");
    }
  }

  // Lines (sorted, from token order) on which a guard token appears; used
  // for the adjacency test of contract-cast / contract-memcpy.
  std::vector<int> guard_lines;

  if (serialization_path) {
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.kind != TokKind::kIdentifier) continue;
      if (t.text == "ECLAT_CHECK" || t.text == "ECLAT_DCHECK" ||
          t.text == "throw") {
        guard_lines.push_back(t.line);
      }
    }
  }

  auto guarded = [&](int line) {
    for (const int g : guard_lines) {
      if (g <= line ? line - g <= kGuardWindowBefore
                    : g - line <= kGuardWindowAfter) {
        return true;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    if (t.text == "assert" && is_punct(toks, i + 1, "(") &&
        !is_member_or_foreign_qualified(toks, i)) {
      add(findings, file, t.line, "contract-assert", "raw assert(...)",
          "use ECLAT_CHECK (always on) or ECLAT_DCHECK (debug/sanitizer "
          "builds) from common/check.hpp");
      continue;
    }

    if ((t.text == "abort" || t.text == "exit" || t.text == "_Exit" ||
         t.text == "quick_exit" || t.text == "terminate") &&
        is_punct(toks, i + 1, "(")) {
      // Allow member calls (foo.exit()) and foreign qualifiers; std::abort
      // is still the banned thing.
      if (is_member_or_foreign_qualified(toks, i)) continue;
      add(findings, file, t.line, "contract-abort",
          "raw " + t.text + "(...)",
          "fail through ECLAT_CHECK(false) / ECLAT_UNREACHABLE so the "
          "failure carries file:line and a uniform abort path");
      continue;
    }

    if (!serialization_path) continue;

    if (t.text == "reinterpret_cast") {
      if (!guarded(t.line)) {
        add(findings, file, t.line, "contract-cast",
            "unguarded reinterpret_cast on a serialization path",
            "validate lengths first: put an ECLAT_CHECK bounds guard (or a "
            "throwing length check) within the preceding " +
                std::to_string(kGuardWindowBefore) + " lines");
      }
      continue;
    }

    if ((t.text == "memcpy" || t.text == "memmove") &&
        is_punct(toks, i + 1, "(")) {
      if (!guarded(t.line)) {
        add(findings, file, t.line, "contract-memcpy",
            "unguarded " + t.text + " on a serialization path",
            "validate the byte count against the remaining buffer with an "
            "ECLAT_CHECK (or throwing check) within the preceding " +
                std::to_string(kGuardWindowBefore) + " lines");
      }
      continue;
    }
  }
}

}  // namespace eclat::lint
