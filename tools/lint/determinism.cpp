// Determinism analyzer: the simulator (src/mc) and the algorithms that run
// on it (src/parallel) must be pure functions of (plan, seed). Wall clocks,
// unseeded randomness, raw threading primitives, and address-dependent
// container orders are exactly the ways that promise silently breaks, so
// they are banned in those two layers; legitimate substrate uses carry an
// explicit, justified suppression instead of reviewer folklore.
//
// Rules:
//   det-wallclock       wall/CPU clock reads inside src/mc, src/parallel
//   det-random          unseeded randomness inside src/mc, src/parallel
//   det-thread          std:: threading primitives anywhere in src/
//                       except src/exec — the execution backends are the
//                       one module where real threads are the point; the
//                       deterministic layers go through the mc
//                       substrate's virtual-time collectives instead
//   det-ptr-key         pointer-keyed std:: containers inside src/mc,
//                       src/parallel (iteration order = allocator behavior)
//   det-unordered-iter  range-for / .begin() over std::unordered_{map,set}
//                       variables in files on the result-emission or wire-
//                       serialization path (hash order escapes into bytes)
#include "lint.hpp"

#include <cstddef>

namespace eclat::lint {

namespace {

struct Ban {
  const char* ident;       ///< identifier token to match
  bool require_std;        ///< only when written std::ident
  bool require_call;       ///< only when followed by '('
  const char* id;          ///< finding id
  const char* what;        ///< message fragment
};

const Ban kBans[] = {
    // det-wallclock: reading any host clock makes virtual time depend on
    // the machine, not the plan.
    {"system_clock", false, false, "det-wallclock", "wall clock read"},
    {"steady_clock", false, false, "det-wallclock", "wall clock read"},
    {"high_resolution_clock", false, false, "det-wallclock",
     "wall clock read"},
    {"gettimeofday", false, true, "det-wallclock", "wall clock read"},
    {"clock_gettime", false, true, "det-wallclock", "raw clock read"},
    {"time", false, true, "det-wallclock", "wall clock read"},
    {"wall_ns", false, true, "det-wallclock", "wall clock read"},
    {"WallStopwatch", false, false, "det-wallclock", "wall-clock stopwatch"},
    {"thread_cpu_ns", false, true, "det-wallclock",
     "host CPU-time read (machine-dependent)"},
    {"CpuStopwatch", false, false, "det-wallclock",
     "host CPU-time stopwatch (machine-dependent)"},

    // det-random: only eclat::Rng streams forked from a plan seed are
    // allowed to produce randomness in the deterministic layers.
    {"rand", false, true, "det-random", "unseeded C randomness"},
    {"srand", false, true, "det-random", "global C RNG seeding"},
    {"random_device", false, false, "det-random", "hardware entropy source"},
    {"mt19937", false, false, "det-random",
     "std RNG engine (distribution algorithms unpinned across stdlibs)"},
    {"mt19937_64", false, false, "det-random",
     "std RNG engine (distribution algorithms unpinned across stdlibs)"},
    {"default_random_engine", false, false, "det-random",
     "implementation-defined RNG engine"},

    // det-thread: raw concurrency primitives. The simulator's collectives
    // and the lease board are the sanctioned concurrency surface.
    {"thread", true, false, "det-thread", "raw thread"},
    {"jthread", true, false, "det-thread", "raw thread"},
    {"this_thread", true, false, "det-thread", "raw thread API"},
    {"async", true, false, "det-thread", "raw task spawn"},
    {"mutex", true, false, "det-thread", "raw mutex"},
    {"recursive_mutex", true, false, "det-thread", "raw mutex"},
    {"timed_mutex", true, false, "det-thread", "raw mutex"},
    {"shared_mutex", true, false, "det-thread", "raw mutex"},
    {"lock_guard", true, false, "det-thread", "raw lock"},
    {"unique_lock", true, false, "det-thread", "raw lock"},
    {"scoped_lock", true, false, "det-thread", "raw lock"},
    {"shared_lock", true, false, "det-thread", "raw lock"},
    {"condition_variable", true, false, "det-thread", "raw condition variable"},
    {"condition_variable_any", true, false, "det-thread",
     "raw condition variable"},
    {"atomic", true, false, "det-thread", "raw atomic"},
    {"atomic_flag", true, false, "det-thread", "raw atomic"},
    {"call_once", true, false, "det-thread", "raw once-init"},
    {"once_flag", true, false, "det-thread", "raw once-init"},
    {"counting_semaphore", true, false, "det-thread", "raw semaphore"},
    {"binary_semaphore", true, false, "det-thread", "raw semaphore"},
    {"latch", true, false, "det-thread", "raw latch"},
};

const char* kOrderedContainers[] = {"map", "set", "multimap", "multiset"};
const char* kUnorderedContainers[] = {"unordered_map", "unordered_set",
                                      "unordered_multimap",
                                      "unordered_multiset"};

/// tokens[i] is directly preceded by `q ::`.
bool qualified_by(const std::vector<Token>& toks, std::size_t i,
                  const char* q) {
  return i >= 3 && is_punct(toks, i - 1, ":") && is_punct(toks, i - 2, ":") &&
         is_ident(toks, i - 3, q);
}

bool is_container(const std::vector<Token>& toks, std::size_t i,
                  bool& unordered) {
  for (const char* name : kUnorderedContainers) {
    if (is_ident(toks, i, name)) {
      unordered = true;
      return true;
    }
  }
  for (const char* name : kOrderedContainers) {
    if (is_ident(toks, i, name)) {
      unordered = false;
      return true;
    }
  }
  return false;
}

/// tokens[open] == '<'. Returns the index one past the matching '>', or
/// toks.size() when unbalanced. `first_arg_ptr` reports whether the first
/// template argument (up to the depth-1 comma) ends in '*'.
std::size_t scan_template_args(const std::vector<Token>& toks,
                               std::size_t open, bool& first_arg_ptr) {
  int depth = 0;
  bool in_first = true;
  bool last_was_star = false;
  std::size_t i = open;
  for (; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind == TokKind::kPunct) {
      if (t.text == "<") ++depth;
      else if (t.text == ">") {
        --depth;
        if (depth == 0) { ++i; break; }
      } else if (t.text == "(") {
        // function type / default arg: skip to matching paren
        int pd = 0;
        for (; i < toks.size(); ++i) {
          if (is_punct(toks, i, "(")) ++pd;
          else if (is_punct(toks, i, ")") && --pd == 0) break;
        }
        continue;
      } else if (t.text == "," && depth == 1) {
        if (in_first) first_arg_ptr = last_was_star;
        in_first = false;
      } else if (t.text == ";") {
        break;  // unbalanced; bail out
      }
      last_was_star = (t.text == "*");
    } else {
      last_was_star = false;
    }
  }
  if (in_first) first_arg_ptr = last_was_star;
  return i;
}

void add(std::vector<Finding>& findings, const SourceFile& file, int line,
         const char* id, const std::string& message,
         const std::string& hint) {
  findings.push_back({file.path, line, id, message, hint, false, ""});
}

}  // namespace

void analyze_determinism(const SourceFile& file, bool emission_path,
                         std::vector<Finding>& findings) {
  const bool deterministic_layer =
      file.module == "mc" || file.module == "parallel";
  // Real threading primitives are legal only in src/exec (the execution
  // backends); everywhere else in src/ they are banned — the deterministic
  // layers because they must be pure functions of (plan, seed), the rest
  // because concurrency belongs behind the Backend seam.
  const bool thread_ban_layer =
      !file.module.empty() && file.module != "exec";
  const std::vector<Token>& toks = file.tokens;

  // Identifier names declared with an unordered container type in this
  // file (heuristic: `unordered_xxx < ... > [&*]* name`). Used by
  // det-unordered-iter below.
  std::set<std::string> unordered_vars;

  int last_ban_line = -1;  // dedup: one finding per (line, rule) pair
  std::string last_ban_id;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokKind::kIdentifier) continue;

    // --- symbol bans (det-thread: all src/ modules but exec; the other
    // rules: mc / parallel only) ---
    if (deterministic_layer || thread_ban_layer) {
      for (const Ban& ban : kBans) {
        if (t.text != ban.ident) continue;
        const bool is_thread_ban = std::string(ban.id) == "det-thread";
        if (is_thread_ban ? !thread_ban_layer : !deterministic_layer) {
          continue;
        }
        if (ban.require_std && !preceded_by_std(toks, i)) continue;
        // `std::chrono::system_clock` is chrono-qualified, not foreign.
        if (!ban.require_std && is_member_or_foreign_qualified(toks, i) &&
            !qualified_by(toks, i, "chrono")) {
          continue;
        }
        if (ban.require_call && !is_punct(toks, i + 1, "(")) continue;
        if (t.line == last_ban_line && ban.id == last_ban_id) continue;
        last_ban_line = t.line;
        last_ban_id = ban.id;
        std::string hint;
        if (std::string(ban.id) == "det-wallclock") {
          hint = "charge virtual time via Processor::compute/advance; "
                 "host-time reads make makespans machine-dependent";
        } else if (std::string(ban.id) == "det-random") {
          hint = "use eclat::Rng forked from the plan seed "
                 "(common/rng.hpp)";
        } else if (deterministic_layer) {
          hint = "express concurrency through the mc substrate "
                 "(collectives, lease board) or suppress with the "
                 "substrate justification";
        } else {
          hint = "real threading primitives live in src/exec (the "
                 "execution backends); route concurrency through a "
                 "Backend instead of spawning threads in this layer";
        }
        add(findings, file, t.line, ban.id,
            std::string(ban.what) + ": " +
                (ban.require_std ? "std::" : "") + ban.ident +
                (ban.require_call ? "(...)" : ""),
            hint);
        break;
      }
    }

    // --- container scans ---
    bool unordered = false;
    if (is_container(toks, i, unordered) && is_punct(toks, i + 1, "<")) {
      bool first_arg_ptr = false;
      const std::size_t after =
          scan_template_args(toks, i + 1, first_arg_ptr);
      if (deterministic_layer && first_arg_ptr && preceded_by_std(toks, i)) {
        add(findings, file, t.line, "det-ptr-key",
            "pointer-keyed std::" + t.text +
                " (key order / hash depends on allocation addresses)",
            "key by a stable id (proc id, class id, PairKey) instead of an "
            "object address");
      }
      // Record the declared variable name, if this looks like a
      // declaration: `... > [&*]* name` followed by one of  = ( { ; ,  .
      if (unordered && after < toks.size()) {
        std::size_t j = after;
        while (is_punct(toks, j, "&") || is_punct(toks, j, "*")) ++j;
        if (j < toks.size() && toks[j].kind == TokKind::kIdentifier) {
          unordered_vars.insert(toks[j].text);
        }
      }
    }

    // --- det-unordered-iter: iteration over unordered containers on
    // emission / serialization paths ---
    if (emission_path && t.text == "for" && is_punct(toks, i + 1, "(")) {
      // Find the ':' at paren depth 1 that is not part of a '::'.
      int depth = 0;
      std::size_t colon = 0;
      std::size_t close = 0;
      for (std::size_t j = i + 1; j < toks.size(); ++j) {
        if (is_punct(toks, j, "(")) ++depth;
        else if (is_punct(toks, j, ")")) {
          if (--depth == 0) { close = j; break; }
        } else if (is_punct(toks, j, ":") && depth == 1 && colon == 0 &&
                   !is_punct(toks, j + 1, ":") && !is_punct(toks, j - 1, ":")) {
          colon = j;
        }
      }
      if (colon != 0 && close > colon + 1) {
        // Range expression == a single known-unordered identifier.
        if (close == colon + 2 &&
            toks[colon + 1].kind == TokKind::kIdentifier &&
            unordered_vars.count(toks[colon + 1].text) > 0) {
          add(findings, file, t.line, "det-unordered-iter",
              "range-for over std::unordered container '" +
                  toks[colon + 1].text + "' on an emission path",
              "hash order escapes into emitted bytes; iterate a sorted key "
              "vector, or suppress if every consumer is order-insensitive");
        }
      }
    }
    if (emission_path && unordered_vars.count(t.text) > 0 &&
        (is_punct(toks, i + 1, ".") || is_punct(toks, i + 1, "->"))) {
      if (i + 2 < toks.size() &&
          (toks[i + 2].text == "begin" || toks[i + 2].text == "cbegin") &&
          is_punct(toks, i + 3, "(")) {
        add(findings, file, t.line, "det-unordered-iter",
            "iterator walk over std::unordered container '" + t.text +
                "' on an emission path",
            "hash order escapes into emitted bytes; iterate a sorted key "
            "vector, or suppress if every consumer is order-insensitive");
      }
    }
  }
}

}  // namespace eclat::lint
