// eclat-lint driver: file discovery, analyzer dispatch, reporting.
//
//   eclat-lint --root <repo> [--json] [--exclude <substr>]... [--quiet]
//
// Scans src/, bench/, and tests/ under the root (skipping build trees and
// the intentionally-bad tests/lint_corpus snippets), runs the determinism,
// layering, and contracts analyzers, honors inline suppressions, and exits
// nonzero when any unsuppressed finding remains. --json emits a structured
// report on stdout (findings sorted by path, line, id) for the CI artifact
// and the golden-corpus tests.
#include "lint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace fs = std::filesystem;

namespace eclat::lint {
namespace {

struct Options {
  std::string root = ".";
  bool json = false;
  bool quiet = false;
  std::vector<std::string> excludes = {"lint_corpus", "/build"};
};

bool has_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

/// Is this file on the result-emission / wire-serialization path? By
/// definition (DESIGN.md §8.1): the wire and result/IO modules themselves,
/// plus every src/ file that includes them.
bool on_emission_path(const SourceFile& file) {
  if (file.module.empty()) return false;
  if (file.path.find("parallel/wire.") != std::string::npos) return true;
  if (file.path.find("data/result_io.") != std::string::npos) return true;
  if (file.path.find("data/io.") != std::string::npos) return true;
  for (const std::string& inc : file.local_includes) {
    if (inc == "parallel/wire.hpp" || inc == "data/result_io.hpp" ||
        inc == "data/io.hpp") {
      return true;
    }
  }
  return false;
}

/// Files where unguarded reinterpret_cast/memcpy are contract violations:
/// the byte-reinterpreting serialization modules themselves.
bool on_serialization_path(const SourceFile& file) {
  if (file.module.empty()) return false;
  return file.path.find("parallel/wire.") != std::string::npos ||
         file.path.find("data/result_io.") != std::string::npos ||
         file.path.find("data/io.") != std::string::npos;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string relative_path(const fs::path& p, const fs::path& root) {
  std::string rel = fs::relative(p, root).generic_string();
  return rel;
}

void print_human(const std::vector<Finding>& findings,
                 std::size_t files_scanned, std::size_t suppression_count,
                 bool quiet) {
  std::size_t unsuppressed = 0;
  std::size_t suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      if (!quiet) {
        std::cout << f.path << ":" << f.line << ": [" << f.id
                  << "] suppressed: " << f.message
                  << "\n    justification: " << f.justification << "\n";
      }
      continue;
    }
    ++unsuppressed;
    std::cout << f.path << ":" << f.line << ": [" << f.id << "] "
              << f.message << "\n    hint: " << f.hint << "\n";
  }
  std::cout << "eclat-lint: " << files_scanned << " files, " << unsuppressed
            << " finding(s), " << suppressed << " suppressed ("
            << suppression_count << " suppression comment(s))\n";
}

void print_json(const std::vector<Finding>& findings,
                std::size_t files_scanned, std::size_t suppression_count) {
  std::map<std::string, std::size_t> by_analyzer;
  std::size_t suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
    } else {
      ++by_analyzer[analyzer_of(f.id)];
    }
  }
  std::cout << "{\n  \"files_scanned\": " << files_scanned << ",\n";
  std::cout << "  \"findings\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    std::cout << "    {\"path\": \"" << json_escape(f.path)
              << "\", \"line\": " << f.line << ", \"id\": \""
              << json_escape(f.id) << "\", \"analyzer\": \""
              << analyzer_of(f.id) << "\", \"message\": \""
              << json_escape(f.message) << "\", \"hint\": \""
              << json_escape(f.hint) << "\", \"suppressed\": "
              << (f.suppressed ? "true" : "false")
              << ", \"justification\": \"" << json_escape(f.justification)
              << "\"}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  std::cout << "  ],\n";
  std::cout << "  \"summary\": {\"total\": " << findings.size()
            << ", \"suppressed\": " << suppressed << ", \"unsuppressed\": "
            << findings.size() - suppressed
            << ", \"suppression_comments\": " << suppression_count
            << ", \"by_analyzer\": {";
  bool first = true;
  for (const auto& entry : by_analyzer) {
    std::cout << (first ? "" : ", ") << "\"" << entry.first
              << "\": " << entry.second;
    first = false;
  }
  std::cout << "}}\n}\n";
}

int run(const Options& opts) {
  const fs::path root(opts.root);
  if (!fs::is_directory(root)) {
    std::cerr << "eclat-lint: root '" << opts.root
              << "' is not a directory\n";
    return 2;
  }

  std::vector<fs::path> inputs;
  for (const char* dir : {"src", "bench", "tests"}) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !has_extension(entry.path())) continue;
      const std::string rel = relative_path(entry.path(), root);
      bool excluded = false;
      for (const std::string& ex : opts.excludes) {
        if (("/" + rel).find(ex) != std::string::npos) excluded = true;
      }
      if (!excluded) inputs.push_back(entry.path());
    }
  }
  std::sort(inputs.begin(), inputs.end());

  std::vector<SourceFile> files;
  files.reserve(inputs.size());
  for (const fs::path& p : inputs) {
    files.push_back(lex_file(relative_path(p, root), slurp(p)));
  }

  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    analyze_determinism(file, on_emission_path(file), findings);
    analyze_contracts(file, on_serialization_path(file), findings);
    analyze_robustness(file, findings);
  }
  analyze_layering(files, findings);
  apply_suppressions(files, findings);

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.id < b.id;
            });

  std::size_t suppression_count = 0;
  for (const SourceFile& file : files) {
    suppression_count += file.suppressions.size();
  }

  if (opts.json) {
    print_json(findings, files.size(), suppression_count);
  } else {
    print_human(findings, files.size(), suppression_count, opts.quiet);
  }

  for (const Finding& f : findings) {
    if (!f.suppressed) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace eclat::lint

int main(int argc, char** argv) {
  eclat::lint::Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = argv[++i];
    } else if (arg == "--json") {
      opts.json = true;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else if (arg == "--exclude" && i + 1 < argc) {
      opts.excludes.push_back(argv[++i]);
    } else if (arg == "--help" || arg == "-h") {
      std::cout
          << "usage: eclat-lint [--root <dir>] [--json] [--quiet] "
             "[--exclude <substr>]...\n"
             "Project static analysis: determinism, layering, contracts.\n"
             "Exits 1 on any unsuppressed finding, 2 on usage errors.\n";
      return 0;
    } else {
      std::cerr << "eclat-lint: unknown argument '" << arg
                << "' (try --help)\n";
      return 2;
    }
  }
  return eclat::lint::run(opts);
}
