// Bring-your-own-data: load a transaction file in the whitespace text
// format (one basket per line, integer item ids — the same format SPMF and
// Borgelt's tools use), mine it, and write the frequent itemsets out.
//
//   ./custom_data <input.txt> [--support=0.05] [--out=frequent.txt]
//
// With no input file a small demo file is created and used.
#include <cstdio>
#include <fstream>

#include "api/mining.hpp"
#include "common/flags.hpp"
#include "data/io.hpp"

namespace {

std::string make_demo_file() {
  // Nine baskets over items {0..5}: {0,1} and {0,1,2} are clearly frequent.
  const char* contents =
      "0 1 2\n0 1\n0 1 2 4\n3 5\n0 1 2\n1 2\n0 1 5\n0 1 2 3\n2 4\n";
  const std::string path = "/tmp/eclat_demo_baskets.txt";
  std::ofstream file(path);
  file << contents;
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  const std::string input = flags.positional().empty()
                                ? make_demo_file()
                                : flags.positional().front();
  eclat::HorizontalDatabase db;
  try {
    db = eclat::read_text_file(input);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "failed to read %s: %s\n", input.c_str(),
                 error.what());
    return 1;
  }
  std::printf("loaded %zu transactions over %u items from %s\n", db.size(),
              db.num_items(), input.c_str());

  eclat::api::MineOptions options;
  options.min_support = flags.get_double("support", 0.05);
  const eclat::MiningResult result = eclat::api::mine(db, options);
  std::printf("%zu frequent itemsets at support >= %.1f%%\n",
              result.itemsets.size(), options.min_support * 100.0);

  const std::string out_path = flags.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    for (const eclat::FrequentItemset& f : result.itemsets) {
      for (std::size_t i = 0; i < f.items.size(); ++i) {
        out << (i ? " " : "") << f.items[i];
      }
      out << " #SUP: " << f.support << '\n';
    }
    std::printf("wrote %s\n", out_path.c_str());
  } else {
    for (const eclat::FrequentItemset& f : result.itemsets) {
      std::printf("  %s  support %llu\n", eclat::to_string(f.items).c_str(),
                  static_cast<unsigned long long>(f.support));
    }
  }
  return 0;
}
