// Maximal-itemset summarization + bounded-memory transformation: two of
// the library's extensions working together on one workload.
//
// A full frequent-itemset listing explodes combinatorially at low support;
// the maximal family (MaxEclat) is the compact antichain that covers it.
// The external transformation builds the vertical database under a fixed
// memory budget — the paper's §7 answer to its own memory-footprint
// critique.
//
//   ./maximal_summary [--transactions=10000] [--support=0.005]
//                     [--budget-kb=256]
#include <cstdio>
#include <sstream>

#include "common/flags.hpp"
#include "eclat/eclat_seq.hpp"
#include "eclat/external_transform.hpp"
#include "eclat/max_eclat.hpp"
#include "gen/quest.hpp"
#include "vertical/vertical_db.hpp"

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  eclat::gen::QuestConfig gen_config;
  gen_config.num_transactions =
      static_cast<std::size_t>(flags.get_int("transactions", 10000));
  gen_config.num_items = 400;
  gen_config.num_patterns = 120;
  const eclat::HorizontalDatabase db =
      eclat::gen::QuestGenerator(gen_config).generate();
  const double support = flags.get_double("support", 0.005);
  const eclat::Count minsup = eclat::absolute_support(support, db.size());

  // Full frequent family vs its maximal summary.
  eclat::EclatConfig full_config;
  full_config.minsup = minsup;
  const eclat::MiningResult full = eclat_sequential(db, full_config);

  eclat::MaxEclatConfig max_config;
  max_config.minsup = minsup;
  eclat::MaxEclatStats max_stats;
  const eclat::MiningResult maximal = max_eclat(db, max_config, &max_stats);

  std::printf("support %.2f%%: %zu frequent itemsets, %zu maximal "
              "(%.1fx smaller; %zu classes collapsed by the top-element "
              "test)\n\n",
              support * 100.0, full.itemsets.size(), maximal.itemsets.size(),
              static_cast<double>(full.itemsets.size()) /
                  static_cast<double>(maximal.itemsets.size()),
              max_stats.top_hits);

  std::printf("largest maximal itemsets:\n");
  std::size_t shown = 0;
  for (auto it = maximal.itemsets.rbegin();
       it != maximal.itemsets.rend() && shown < 5; ++it, ++shown) {
    std::printf("  %s  support %llu\n", eclat::to_string(it->items).c_str(),
                static_cast<unsigned long long>(it->support));
  }

  // Bounded-memory vertical transformation of the same data.
  eclat::TriangleCounter counter(db.num_items());
  counter.count(db.transactions());
  const std::vector<eclat::PairKey> pairs = counter.frequent_pairs(minsup);
  std::vector<eclat::Count> counts;
  counts.reserve(pairs.size());
  for (eclat::PairKey key : pairs) {
    counts.push_back(
        counter.get(eclat::pair_first(key), eclat::pair_second(key)));
  }

  eclat::ExternalTransformConfig transform_config;
  transform_config.memory_budget =
      static_cast<std::size_t>(flags.get_int("budget-kb", 256)) * 1024;
  std::stringstream vertical_file;
  const eclat::ExternalTransformStats transform_stats =
      eclat::external_transform(db.transactions(), pairs, counts,
                                vertical_file, transform_config);

  std::printf("\nexternal transformation of %zu tid-lists under a %zu KB "
              "budget:\n  %zu passes, peak memory %.1f KB, %.2f MB written\n",
              pairs.size(), transform_config.memory_budget / 1024,
              transform_stats.passes,
              static_cast<double>(transform_stats.peak_memory_bytes) /
                  1024.0,
              static_cast<double>(vertical_file.str().size()) / 1e6);
  return 0;
}
