// Retail analytics scenario (the paper's §1 motivation): mine association
// rules from basket data — "customers who buy A and B also buy C" — and
// rank them by confidence and lift.
//
//   ./retail_rules [--transactions=20000] [--support=0.005]
//                  [--confidence=0.7] [--top=15]
#include <cstdio>

#include "api/mining.hpp"
#include "common/flags.hpp"
#include "gen/quest.hpp"
#include "rules/rules.hpp"

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  // A "store" with 500 products and strongly correlated purchase patterns.
  eclat::gen::QuestConfig gen_config;
  gen_config.num_transactions =
      static_cast<std::size_t>(flags.get_int("transactions", 20000));
  gen_config.num_items = 500;
  gen_config.num_patterns = 150;
  gen_config.avg_transaction_length = 12;
  gen_config.avg_pattern_length = 4;
  gen_config.seed = 2024;
  const eclat::HorizontalDatabase db =
      eclat::gen::QuestGenerator(gen_config).generate();

  eclat::api::MineOptions options;
  options.algorithm = eclat::api::Algorithm::kEclat;
  options.min_support = flags.get_double("support", 0.005);
  const eclat::MiningResult itemsets = eclat::api::mine(db, options);

  const double min_confidence = flags.get_double("confidence", 0.7);
  const auto rules = eclat::generate_rules(
      itemsets, db.size(), eclat::RuleConfig{min_confidence});

  std::printf("%zu transactions, %zu frequent itemsets, %zu rules at "
              "confidence >= %.0f%%\n\n",
              db.size(), itemsets.itemsets.size(), rules.size(),
              min_confidence * 100.0);

  const std::size_t top =
      static_cast<std::size_t>(flags.get_int("top", 15));
  std::printf("%-28s %-12s %10s %10s %8s\n", "antecedent", "consequent",
              "confidence", "support%", "lift");
  for (std::size_t i = 0; i < rules.size() && i < top; ++i) {
    const eclat::AssociationRule& rule = rules[i];
    std::printf("%-28s %-12s %9.1f%% %9.2f%% %8.1f\n",
                eclat::to_string(rule.antecedent).c_str(),
                eclat::to_string(rule.consequent).c_str(),
                rule.confidence * 100.0,
                100.0 * static_cast<double>(rule.support) /
                    static_cast<double>(db.size()),
                rule.lift);
  }
  return 0;
}
