// Synthetic-database generator CLI: writes IBM Quest-style basket data in
// the text or binary format so other tools (or other mining libraries) can
// consume the exact same workloads.
//
//   ./datagen --out=baskets.txt [--transactions=100000] [--avg-length=10]
//             [--pattern-length=6] [--items=1000] [--patterns=2000]
//             [--seed=1997] [--format=text|binary]
#include <cstdio>

#include "common/flags.hpp"
#include "data/io.hpp"
#include "gen/quest.hpp"

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  eclat::gen::QuestConfig config;
  config.num_transactions =
      static_cast<std::size_t>(flags.get_int("transactions", 100000));
  config.avg_transaction_length = flags.get_double("avg-length", 10.0);
  config.avg_pattern_length = flags.get_double("pattern-length", 6.0);
  config.num_items =
      static_cast<eclat::Item>(flags.get_int("items", 1000));
  config.num_patterns =
      static_cast<std::size_t>(flags.get_int("patterns", 2000));
  config.correlation = flags.get_double("correlation", 0.5);
  config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1997));

  const std::string out = flags.get("out", "");
  if (out.empty()) {
    std::fprintf(stderr,
                 "usage: datagen --out=<path> [--transactions=N] "
                 "[--avg-length=T] [--pattern-length=I] [--items=N] "
                 "[--patterns=L] [--seed=S] [--format=text|binary]\n");
    return 1;
  }

  std::printf("generating %s ...\n",
              eclat::gen::database_name(config).c_str());
  const eclat::HorizontalDatabase db =
      eclat::gen::QuestGenerator(config).generate();
  const eclat::DatabaseStats stats = eclat::compute_stats(db);

  const std::string format = flags.get("format", "text");
  if (format == "binary") {
    eclat::write_binary_file(db, out);
  } else if (format == "text") {
    eclat::write_text_file(db, out);
  } else {
    std::fprintf(stderr, "unknown format: %s\n", format.c_str());
    return 1;
  }
  std::printf("wrote %zu transactions (avg length %.2f, %.2f MB) to %s\n",
              stats.num_transactions, stats.avg_transaction_length,
              static_cast<double>(stats.byte_size) / 1e6, out.c_str());
  return 0;
}
