// Quickstart: generate a synthetic basket database, mine frequent itemsets
// with Eclat, and print the result — the ten-line tour of the public API.
//
//   ./quickstart [--transactions=5000] [--support=0.01] [--algo=eclat]
#include <cstdio>

#include "api/mining.hpp"
#include "common/flags.hpp"
#include "gen/quest.hpp"

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  // 1. Data: an IBM Quest-style synthetic basket database (or load your
  //    own with eclat::read_text_file / read_binary_file).
  eclat::gen::QuestConfig gen_config;
  gen_config.num_transactions =
      static_cast<std::size_t>(flags.get_int("transactions", 5000));
  gen_config.num_items = 200;
  gen_config.num_patterns = 80;
  const eclat::HorizontalDatabase db =
      eclat::gen::QuestGenerator(gen_config).generate();
  std::printf("database: %s  (%zu transactions, avg length %.1f)\n",
              eclat::gen::database_name(gen_config).c_str(), db.size(),
              db.average_transaction_length());

  // 2. Mine.
  eclat::api::MineOptions options;
  options.algorithm =
      eclat::api::parse_algorithm(flags.get("algo", "eclat"));
  options.min_support = flags.get_double("support", 0.01);
  const eclat::MiningResult result = eclat::api::mine(db, options);

  // 3. Report.
  std::printf("minimum support %.2f%% -> %zu frequent itemsets\n",
              options.min_support * 100.0, result.itemsets.size());
  for (std::size_t k = 1; k <= result.max_size(); ++k) {
    std::printf("  |L%zu| = %zu\n", k, result.count_of_size(k));
  }
  std::printf("largest itemsets:\n");
  std::size_t shown = 0;
  for (auto it = result.itemsets.rbegin();
       it != result.itemsets.rend() && shown < 5; ++it, ++shown) {
    std::printf("  %s  support %llu\n", eclat::to_string(it->items).c_str(),
                static_cast<unsigned long long>(it->support));
  }
  return 0;
}
