// Parallel mining on a simulated Memory Channel cluster: runs parallel
// Eclat and Count Distribution on the same database and prints the phase
// breakdown, traffic, and speedup — a miniature of the paper's Table 2.
//
//   ./cluster_mining [--transactions=30000] [--support=0.0025]
//                    [--hosts=8] [--procs=4] [--trace=timeline.csv]
#include <cstdio>

#include "api/mining.hpp"
#include "common/flags.hpp"
#include "gen/quest.hpp"
#include <fstream>

#include "mc/trace.hpp"
#include "parallel/count_distribution.hpp"
#include "parallel/par_eclat.hpp"

int main(int argc, char** argv) {
  const eclat::Flags flags(argc, argv);

  eclat::gen::QuestConfig gen_config;
  gen_config.num_transactions =
      static_cast<std::size_t>(flags.get_int("transactions", 30000));
  const eclat::HorizontalDatabase db =
      eclat::gen::QuestGenerator(gen_config).generate();

  const eclat::mc::Topology topology{
      static_cast<std::size_t>(flags.get_int("hosts", 8)),
      static_cast<std::size_t>(flags.get_int("procs", 4))};
  const double support = flags.get_double("support", 0.0025);
  const eclat::Count minsup = eclat::absolute_support(support, db.size());

  std::printf("database %s, support %.2f%% (%llu transactions), "
              "cluster %s\n\n",
              eclat::gen::database_name(gen_config).c_str(),
              support * 100.0, static_cast<unsigned long long>(minsup),
              topology.label().c_str());

  // Parallel Eclat with its four phases.
  eclat::mc::Cluster eclat_cluster(topology);
  eclat::mc::Trace trace;
  const std::string trace_path = flags.get("trace", "");
  if (!trace_path.empty()) eclat_cluster.set_trace(&trace);
  eclat::par::ParEclatConfig eclat_config;
  eclat_config.minsup = minsup;
  const eclat::par::ParallelOutput eclat_run =
      eclat::par::par_eclat(eclat_cluster, db, eclat_config);

  std::printf("Eclat          total %8.2fs   (%zu frequent itemsets)\n",
              eclat_run.total_seconds, eclat_run.result.itemsets.size());
  for (const char* phase : {"initialization", "transformation",
                            "asynchronous", "reduction"}) {
    std::printf("  %-16s %8.2fs  (%4.1f%%)\n", phase,
                eclat_run.phase_seconds.at(phase),
                100.0 * eclat_run.phase_seconds.at(phase) /
                    eclat_run.total_seconds);
  }
  std::printf("  MC traffic: %.2f MB in %llu messages\n\n",
              static_cast<double>(eclat_run.mc_bytes) / 1e6,
              static_cast<unsigned long long>(eclat_run.mc_messages));

  // The Count Distribution baseline.
  eclat::mc::Cluster cd_cluster(topology);
  eclat::par::CountDistributionConfig cd_config;
  cd_config.minsup = minsup;
  const eclat::par::ParallelOutput cd_run =
      eclat::par::count_distribution(cd_cluster, db, cd_config);

  std::printf("CountDistrib   total %8.2fs   (%zu frequent itemsets, "
              "%zu scans)\n",
              cd_run.total_seconds, cd_run.result.itemsets.size(),
              cd_run.result.database_scans);
  std::printf("  MC traffic: %.2f MB in %llu messages\n\n",
              static_cast<double>(cd_run.mc_bytes) / 1e6,
              static_cast<unsigned long long>(cd_run.mc_messages));

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    trace.dump_csv(out);
    std::printf("wrote %zu trace events to %s\n", trace.size(),
                trace_path.c_str());
  }

  std::printf("improvement ratio (CD / Eclat): %.1fx\n",
              cd_run.total_seconds / eclat_run.total_seconds);
  const bool same = eclat_run.result.itemsets.size() ==
                    cd_run.result.itemsets.size();
  std::printf("results agree: %s\n", same ? "yes" : "NO (bug!)");
  return same ? 0 : 1;
}
