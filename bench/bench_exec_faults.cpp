// Cost of the thread backend's fault-tolerance layer.
//
// Two experiments on the kernel bench's databases (the sparse T10.I4 and
// the dense T10.I4.N64), both on the work-stealing scheduler:
//
//   1. fault_free_overhead — min-of-R wall seconds of the bare worker
//      loop (--exec-isolation=off: no exception capture, no progress
//      board, no validation) vs. the full isolation layer on a clean
//      run. The acceptance line: the layer costs <= 2% when nothing
//      faults — it is a handful of relaxed atomics and one result
//      validation per class, not a second copy of the work.
//
//   2. fault_recovery — one injected fault on the heaviest class (throw,
//      corrupt, stall) against the fault-free isolation run: wall-clock
//      recovery overhead, retry/reclaim counters, and the byte-identical
//      check against the mc reference. Quantifies what one retry costs
//      end to end.
//
// Writes BENCH_exec_faults.json. Wall-clock numbers; the JSON carries
// `host_cores` since a 1-core container serializes the workers.
//
//   ./bench_exec_faults [--scale=0.1] [--support=0.0025] [--repeats=5]
//                       [--exec-threads=3] [--json=true]
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "data/result_io.hpp"
#include "exec/backend.hpp"
#include "exec/thread_backend.hpp"
#include "gen/quest.hpp"

namespace {

using namespace eclat;

struct OverheadRow {
  std::string database;
  double bare_seconds = 0.0;       ///< isolation off, min of repeats
  double isolated_seconds = 0.0;   ///< isolation on, min of repeats
  double overhead() const {
    return bare_seconds > 0 ? isolated_seconds / bare_seconds - 1.0 : 0.0;
  }
};

struct RecoveryRow {
  std::string database;
  std::string fault;
  double clean_seconds = 0.0;
  double faulted_seconds = 0.0;
  std::uint64_t failures = 0;
  std::uint64_t retries = 0;
  std::uint64_t reclaims = 0;
  bool identical = false;
  double overhead() const {
    return clean_seconds > 0 ? faulted_seconds / clean_seconds - 1.0 : 0.0;
  }
};

par::ParallelOutput run_threads(const HorizontalDatabase& db,
                                const par::ParEclatConfig& config,
                                const exec::ThreadBackendOptions& options) {
  exec::ThreadBackend backend(options);
  return backend.mine(db, config);
}

/// Minimum wall seconds over `repeats` identical runs — the standard
/// noise filter for wall-clock micro-comparisons.
template <typename Run>
double min_wall_seconds(std::size_t repeats, Run&& run) {
  double best = 0.0;
  for (std::size_t r = 0; r < repeats; ++r) {
    const double wall = run();
    if (r == 0 || wall < best) best = wall;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using eclat::bench::print_rule;
  const WallStopwatch bench_watch;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.1);
  const double support = flags.get_double("support", 0.0025);
  const std::size_t repeats = flags.get_uint("repeats", 5);
  const std::size_t threads =
      exec::resolve_threads(flags.get_uint("exec-threads", 3));
  const bool write_json = flags.get_bool("json", true);
  const unsigned host_cores = std::thread::hardware_concurrency();

  struct Database {
    std::string name;
    HorizontalDatabase db;
    double support;
  };
  std::vector<Database> databases;
  {
    gen::QuestConfig sparse;  // T10.I4, paper-style N = 1000
    sparse.avg_pattern_length = 4.0;
    sparse.num_transactions = static_cast<std::size_t>(100'000 * scale);
    sparse.seed = 2004;
    databases.push_back(
        {"T10.I4." + std::to_string(sparse.num_transactions / 1000) + "K",
         gen::QuestGenerator(sparse).generate(), support});

    gen::QuestConfig dense = sparse;  // 64-item catalog: dense tid-lists
    dense.num_items = 64;
    dense.num_patterns = 200;
    dense.seed = 2005;
    databases.push_back(
        {"T10.I4.N64." + std::to_string(dense.num_transactions / 1000) + "K",
         gen::QuestGenerator(dense).generate(), 0.05});
  }

  std::printf("exec fault tolerance: threads=%zu host_cores=%u repeats=%zu\n",
              threads, host_cores, repeats);

  // --- Experiment 1: fault-free overhead of the isolation layer. ---
  std::printf("\nFault-free overhead (isolation off vs on, min of %zu)\n",
              repeats);
  print_rule('=', 66);
  std::printf("%-16s | %10s %10s | %8s\n", "Database", "bare(s)", "isol(s)",
              "ovhd");
  print_rule('-', 66);

  std::vector<OverheadRow> overhead_rows;
  std::vector<RecoveryRow> recovery_rows;
  bool diverged = false;
  for (const Database& spec : databases) {
    par::ParEclatConfig config;
    config.minsup = absolute_support(spec.support, spec.db.size());

    const std::unique_ptr<exec::Backend> reference = exec::make_backend(
        exec::BackendKind::kMc, mc::Topology{1, 1}, mc::CostModel{}, {});
    const std::vector<std::uint8_t> reference_bytes =
        result_to_bytes(reference->mine(spec.db, config).result);

    exec::ThreadBackendOptions bare;
    bare.threads = threads;
    bare.isolation = false;
    exec::ThreadBackendOptions isolated;
    isolated.threads = threads;

    OverheadRow row;
    row.database = spec.name;
    row.bare_seconds = min_wall_seconds(repeats, [&] {
      return run_threads(spec.db, config, bare).wall_seconds;
    });
    row.isolated_seconds = min_wall_seconds(repeats, [&] {
      const par::ParallelOutput run = run_threads(spec.db, config, isolated);
      if (result_to_bytes(run.result) != reference_bytes) diverged = true;
      return run.wall_seconds;
    });
    std::printf("%-16s | %10.4f %10.4f | %+7.2f%%\n", row.database.c_str(),
                row.bare_seconds, row.isolated_seconds,
                100.0 * row.overhead());
    overhead_rows.push_back(row);

    // --- Experiment 2: recovery cost of one injected fault. ---
    const double clean_seconds = min_wall_seconds(repeats, [&] {
      return run_threads(spec.db, config, isolated).wall_seconds;
    });
    const struct {
      const char* name;
      exec::ExecFaultEvent event;
    } faults[] = {
        {"throw", exec::ExecFaultPlan::throw_on(0)},
        {"corrupt", exec::ExecFaultPlan::corrupt_on(0)},
        {"stall", exec::ExecFaultPlan::stall_on(0)},
    };
    for (const auto& fault : faults) {
      exec::ThreadBackendOptions faulted = isolated;
      faulted.faults.events.assign(1, fault.event);
      RecoveryRow recovery;
      recovery.database = spec.name;
      recovery.fault = fault.name;
      recovery.clean_seconds = clean_seconds;
      recovery.identical = true;
      recovery.faulted_seconds = min_wall_seconds(repeats, [&] {
        const par::ParallelOutput run = run_threads(spec.db, config, faulted);
        recovery.failures = run.exec_task_failures;
        recovery.retries = run.exec_task_retries;
        recovery.reclaims = run.exec_stall_reclaims;
        if (result_to_bytes(run.result) != reference_bytes) {
          recovery.identical = false;
          diverged = true;
        }
        return run.wall_seconds;
      });
      recovery_rows.push_back(recovery);
    }
  }
  print_rule('-', 66);

  const double worst_overhead = std::max_element(
      overhead_rows.begin(), overhead_rows.end(),
      [](const OverheadRow& a, const OverheadRow& b) {
        return a.overhead() < b.overhead();
      })->overhead();
  std::printf("worst fault-free overhead: %+.2f%% (acceptance: <= 2%%)\n",
              100.0 * worst_overhead);
  if (worst_overhead > 0.02) {
    // Warn, don't fail: wall-clock noise on shared runners can exceed the
    // margin; the CI trend over BENCH_exec_faults.json is the arbiter.
    std::printf("WARNING: overhead above the 2%% acceptance line\n");
  }

  std::printf("\nRecovery cost of one injected fault on class 0\n");
  print_rule('=', 78);
  std::printf("%-16s %-8s | %9s %9s %7s | %4s %4s %4s | %s\n", "Database",
              "fault", "clean(s)", "fault(s)", "ovhd", "fail", "rtry",
              "rclm", "bytes");
  print_rule('-', 78);
  for (const RecoveryRow& row : recovery_rows) {
    std::printf("%-16s %-8s | %9.4f %9.4f %+6.1f%% | %4llu %4llu %4llu | %s\n",
                row.database.c_str(), row.fault.c_str(), row.clean_seconds,
                row.faulted_seconds, 100.0 * row.overhead(),
                static_cast<unsigned long long>(row.failures),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.reclaims),
                row.identical ? "identical" : "DIVERGED");
  }
  print_rule('-', 78);

  if (write_json) {
    const char* path = "BENCH_exec_faults.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"exec_faults\",\n");
    eclat::bench::write_backend_fields(out, "threads", "wall",
                                       bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"host_cores\": %u,\n  \"threads\": %zu,\n"
                 "  \"repeats\": %zu,\n  \"scale\": %g,\n"
                 "  \"worst_fault_free_overhead\": %.4f,\n"
                 "  \"fault_free_overhead\": [\n",
                 host_cores, threads, repeats, scale, worst_overhead);
    for (std::size_t i = 0; i < overhead_rows.size(); ++i) {
      const OverheadRow& row = overhead_rows[i];
      std::fprintf(out,
                   "    {\"database\": \"%s\", \"bare_seconds\": %.6f, "
                   "\"isolated_seconds\": %.6f, \"overhead\": %.4f}%s\n",
                   row.database.c_str(), row.bare_seconds,
                   row.isolated_seconds, row.overhead(),
                   i + 1 < overhead_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"fault_recovery\": [\n");
    for (std::size_t i = 0; i < recovery_rows.size(); ++i) {
      const RecoveryRow& row = recovery_rows[i];
      std::fprintf(out,
                   "    {\"database\": \"%s\", \"fault\": \"%s\", "
                   "\"clean_seconds\": %.6f, \"faulted_seconds\": %.6f, "
                   "\"overhead\": %.4f, \"failures\": %llu, "
                   "\"retries\": %llu, \"reclaims\": %llu, "
                   "\"identical\": %s}%s\n",
                   row.database.c_str(), row.fault.c_str(), row.clean_seconds,
                   row.faulted_seconds, row.overhead(),
                   static_cast<unsigned long long>(row.failures),
                   static_cast<unsigned long long>(row.retries),
                   static_cast<unsigned long long>(row.reclaims),
                   row.identical ? "true" : "false",
                   i + 1 < recovery_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return diverged ? 1 : 0;
}
