// Table 2 — "Total Execution Time: Eclat (E) vs. Count Distribution (CD)"
// across processor configurations and databases, with Eclat's setup-time
// break-up and the CD/E improvement ratio.
//
// Paper shape (what must reproduce, not the absolute seconds):
//   - Eclat beats CD by 5-18x sequentially and up to ~70x in parallel;
//   - Eclat's setup (initialization + transformation) dominates its total
//     (~55-60%);
//   - CD pays a sum-reduction every iteration (12 iterations at 0.1%) and
//     rescans its partition every iteration, Eclat scans three times.
//
//   ./bench_table2_eclat_vs_cd [--scale=0.02] [--support=0.001]
//                              [--databases=2]
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/count_distribution.hpp"
#include "parallel/par_eclat.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);
  const std::size_t num_databases = static_cast<std::size_t>(
      flags.get_int("databases", 2));  // D800K + D1600K scaled, by default

  std::printf("Table 2: Eclat vs Count Distribution, support %.2f%%, "
              "scale %.3g\n",
              support * 100.0, scale);
  print_rule('=', 100);
  std::printf("%-14s %-22s %12s | %12s %10s %10s | %8s\n", "Config",
              "Database", "CD total(s)", "E total(s)", "E setup(s)",
              "setup %", "CD/E");
  print_rule('-', 100);

  for (std::size_t d = 0; d < num_databases && d < 4; ++d) {
    const PaperDatabase& spec = kPaperDatabases[d];
    const HorizontalDatabase db = make_database(spec, scale);
    const Count minsup = absolute_support(support, db.size());

    for (const mc::Topology& topology : paper_topologies()) {
      mc::Cluster cd_cluster(topology);
      par::CountDistributionConfig cd_config;
      cd_config.minsup = minsup;
      const par::ParallelOutput cd =
          par::count_distribution(cd_cluster, db, cd_config);

      mc::Cluster eclat_cluster(topology);
      par::ParEclatConfig eclat_config;
      eclat_config.minsup = minsup;
      eclat_config.include_singletons = false;  // paper-faithful mode
      const par::ParallelOutput eclat =
          par::par_eclat(eclat_cluster, db, eclat_config);

      std::printf("%-14s %-22s %12.2f | %12.2f %10.2f %9.1f%% | %7.1fx\n",
                  topology.label().c_str(),
                  scaled_name(spec, scale).c_str(), cd.total_seconds,
                  eclat.total_seconds, eclat.setup_seconds(),
                  100.0 * eclat.setup_seconds() / eclat.total_seconds,
                  cd.total_seconds / eclat.total_seconds);
    }
    print_rule('-', 100);
  }
  std::printf("Expected shape: CD/E ratio > 1 everywhere, growing with T; "
              "Eclat setup share ~50-60%%.\n");
  return 0;
}
