// Sequential-algorithm comparison (paper §1.2 related work): Apriori
// (k scans), Partition (2 scans), Eclat tidsets / diffsets (2 scans +
// in-memory vertical mining), on one database across supports.
//
//   ./bench_sequential_algorithms [--scale=0.02]
#include <cstdio>

#include "apriori/apriori.hpp"
#include "bench_util.hpp"
#include "common/clock.hpp"
#include "eclat/eclat_seq.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  std::printf("Sequential algorithms on %s\n",
              scaled_name(kPaperDatabases[0], scale).c_str());
  print_rule('=', 86);
  std::printf("%-10s %-22s %10s %8s %12s\n", "support", "algorithm",
              "time (s)", "scans", "itemsets");
  print_rule('-', 86);

  for (const double support : {0.0025, 0.001}) {
    const Count minsup = absolute_support(support, db.size());
    std::size_t reference = 0;

    {
      AprioriConfig config;
      config.minsup = minsup;
      WallStopwatch watch;
      const MiningResult result = apriori(db, config);
      reference = result.itemsets.size();
      std::printf("%9.2f%% %-22s %10.3f %8zu %12zu\n", support * 100.0,
                  "apriori", watch.elapsed_seconds(), result.database_scans,
                  result.itemsets.size());
    }
    {
      PartitionConfig config;
      config.minsup = minsup;
      config.chunks = 8;
      WallStopwatch watch;
      PartitionStats stats;
      const MiningResult result = partition_mine(db, config, &stats);
      std::printf("%9.2f%% %-22s %10.3f %8zu %12zu  (%zu false pos.)\n",
                  support * 100.0, "partition (8 chunks)",
                  watch.elapsed_seconds(), result.database_scans,
                  result.itemsets.size(), stats.false_positives);
      if (result.itemsets.size() != reference) std::printf("MISMATCH!\n");
    }
    {
      EclatConfig config;
      config.minsup = minsup;
      WallStopwatch watch;
      const MiningResult result = eclat_sequential(db, config);
      std::printf("%9.2f%% %-22s %10.3f %8zu %12zu\n", support * 100.0,
                  "eclat (tidsets)", watch.elapsed_seconds(),
                  result.database_scans, result.itemsets.size());
      if (result.itemsets.size() != reference) std::printf("MISMATCH!\n");
    }
    {
      EclatConfig config;
      config.minsup = minsup;
      config.use_diffsets = true;
      WallStopwatch watch;
      const MiningResult result = eclat_sequential(db, config);
      std::printf("%9.2f%% %-22s %10.3f %8zu %12zu\n", support * 100.0,
                  "eclat (diffsets)", watch.elapsed_seconds(),
                  result.database_scans, result.itemsets.size());
      if (result.itemsets.size() != reference) std::printf("MISMATCH!\n");
    }
    print_rule('-', 86);
  }
  std::printf("Expected: Eclat fastest; Partition trades 2 scans for "
              "false-positive overhead; Apriori scans k times.\n");
  return 0;
}
