// Ablation — hybrid host-aware parallelization (paper §8.1 future work):
// pure T-way database split vs hybrid (host-level split, leader-only disk
// scans, intra-host work sharing). The paper predicts the hybrid wins
// whenever several processors share a host disk.
//
//   ./bench_ablation_hybrid [--scale=0.05] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/hybrid.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.05);
  const double support = flags.get_double("support", kPaperSupport);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Ablation: pure vs hybrid parallelization on %s, "
              "support %.2f%%\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0);
  print_rule('=', 92);
  std::printf("%-14s | %12s %12s %8s | %12s %12s %8s\n", "Config",
              "EclatPure(s)", "EclatHyb(s)", "gain", "CD Pure(s)",
              "CD Hyb(s)", "gain");
  print_rule('-', 92);

  for (const mc::Topology topology :
       {mc::Topology{4, 1}, mc::Topology{2, 2}, mc::Topology{1, 4},
        mc::Topology{8, 1}, mc::Topology{4, 2}, mc::Topology{2, 4},
        mc::Topology{8, 4}}) {
    par::ParEclatConfig eclat_config;
    eclat_config.minsup = minsup;
    eclat_config.include_singletons = false;
    par::CountDistributionConfig cd_config;
    cd_config.minsup = minsup;

    mc::Cluster c1(topology);
    const double eclat_pure =
        par::par_eclat(c1, db, eclat_config).total_seconds;
    mc::Cluster c2(topology);
    const double eclat_hybrid =
        par::hybrid_eclat(c2, db, eclat_config).total_seconds;
    mc::Cluster c3(topology);
    const double cd_pure =
        par::count_distribution(c3, db, cd_config).total_seconds;
    mc::Cluster c4(topology);
    const double cd_hybrid =
        par::hybrid_count_distribution(c4, db, cd_config).total_seconds;

    std::printf("%-14s | %12.2f %12.2f %7.2fx | %12.2f %12.2f %7.2fx\n",
                topology.label().c_str(), eclat_pure, eclat_hybrid,
                eclat_pure / eclat_hybrid, cd_pure, cd_hybrid,
                cd_pure / cd_hybrid);
  }
  print_rule('-', 92);
  std::printf("Expected: gain ~1x at P=1 (hybrid == pure), growing with "
              "processors per host.\n");
  return 0;
}
