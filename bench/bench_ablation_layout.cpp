// Ablation — horizontal vs vertical layout for L2 (paper §4.2).
//
// The paper's operation-count argument: with 1M transactions, 1000 items,
// 10 items per transaction, computing L2 by intersecting item tid-lists
// costs ~C(1000,2) * 2 * 10,000 ≈ 1e10 list steps, while the horizontal
// pass only needs C(10,2) * 1M = 4.5e7 pair increments — which is why
// Eclat counts L2 horizontally and only then switches to tid-lists. This
// benchmark measures both on generated data.
//
//   ./bench_ablation_layout [--scale=0.02]
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "vertical/vertical_db.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(kPaperSupport, db.size());

  std::printf("Ablation: L2 counting layout on %s (%zu transactions, "
              "%u items)\n",
              scaled_name(kPaperDatabases[0], scale).c_str(), db.size(),
              db.num_items());
  print_rule('=');

  // Horizontal: triangular count array in one scan (the paper's choice).
  WallStopwatch horizontal_watch;
  TriangleCounter counter(db.num_items());
  counter.count(db.transactions());
  const auto horizontal_pairs = counter.frequent_pairs(minsup);
  const double horizontal_seconds = horizontal_watch.elapsed_seconds();

  // Vertical: invert items, intersect every candidate pair of frequent
  // items (restricting to frequent 1-items is the fair version — the
  // fully naive all-pairs variant is quadratically worse still).
  WallStopwatch vertical_watch;
  const std::vector<TidList> items =
      invert_items(db.transactions(), db.num_items());
  std::vector<Item> frequent_items;
  for (Item i = 0; i < db.num_items(); ++i) {
    if (items[i].size() >= minsup) frequent_items.push_back(i);
  }
  std::size_t vertical_pairs = 0;
  std::uint64_t steps = 0;
  for (std::size_t i = 0; i < frequent_items.size(); ++i) {
    for (std::size_t j = i + 1; j < frequent_items.size(); ++j) {
      const TidList& a = items[frequent_items[i]];
      const TidList& b = items[frequent_items[j]];
      steps += a.size() + b.size();
      if (intersection_size(a, b) >= minsup) ++vertical_pairs;
    }
  }
  const double vertical_seconds = vertical_watch.elapsed_seconds();

  std::printf("%-36s %10.3fs  -> %zu frequent pairs\n",
              "horizontal (triangle array, 1 scan)", horizontal_seconds,
              horizontal_pairs.size());
  std::printf("%-36s %10.3fs  -> %zu frequent pairs  (%llu tid steps)\n",
              "vertical (item tid-list pairs)", vertical_seconds,
              vertical_pairs, static_cast<unsigned long long>(steps));
  print_rule();
  std::printf("speedup of the horizontal layout: %.1fx  (paper predicts "
              "~20x+ at full scale)\n",
              vertical_seconds / horizontal_seconds);
  std::printf("results agree: %s\n",
              horizontal_pairs.size() == vertical_pairs ? "yes" : "NO");
  return horizontal_pairs.size() == vertical_pairs ? 0 : 1;
}
