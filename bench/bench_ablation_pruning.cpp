// Ablation — candidate pruning (paper §2, §5.3): the (k-1)-subset pruning
// step matters for the hash-tree algorithms (smaller trees, faster subset
// search) but Eclat dispenses with it entirely — tid-list intersections
// kill infrequent candidates for free.
//
//   ./bench_ablation_pruning [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "apriori/apriori.hpp"
#include "bench_util.hpp"
#include "common/clock.hpp"
#include "eclat/eclat_seq.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Ablation: candidate pruning on %s, support %.2f%%\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0);
  print_rule('=');
  std::printf("%-30s %10s %16s\n", "algorithm", "time (s)",
              "itemsets found");
  print_rule();

  std::size_t reference_count = 0;
  for (const bool prune : {true, false}) {
    AprioriConfig config;
    config.minsup = minsup;
    config.prune = prune;
    WallStopwatch watch;
    const MiningResult result = apriori(db, config);
    std::printf("%-30s %10.3f %16zu\n",
                prune ? "apriori + subset pruning" : "apriori, no pruning",
                watch.elapsed_seconds(), result.itemsets.size());
    reference_count = result.itemsets.size();
  }

  {
    EclatConfig config;
    config.minsup = minsup;
    WallStopwatch watch;
    const MiningResult result = eclat_sequential(db, config);
    std::printf("%-30s %10.3f %16zu\n", "eclat (no pruning by design)",
                watch.elapsed_seconds(), result.itemsets.size());
    if (result.itemsets.size() != reference_count) {
      std::printf("RESULT MISMATCH!\n");
      return 1;
    }
  }
  print_rule();
  std::printf("Expected: pruning helps Apriori; Eclat needs none and is "
              "fastest (paper §5.3).\n");
  return 0;
}
