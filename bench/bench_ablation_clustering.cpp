// Ablation — itemset clustering (companion report [18]): prefix
// equivalence classes (Eclat) vs maximal-clique refinement (Clique), and
// the MaxEclat maximal-itemset summary with its top-element pruning.
//
//   ./bench_ablation_clustering [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "clique/clique_eclat.hpp"
#include "common/clock.hpp"
#include "eclat/eclat_seq.hpp"
#include "eclat/max_eclat.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Ablation: itemset clustering on %s, support %.2f%%\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0);
  print_rule('=', 86);

  WallStopwatch plain_watch;
  EclatConfig plain_config;
  plain_config.minsup = minsup;
  const MiningResult plain = eclat_sequential(db, plain_config);
  const double plain_seconds = plain_watch.elapsed_seconds();

  WallStopwatch clique_watch;
  CliqueEclatConfig clique_config;
  clique_config.minsup = minsup;
  CliqueEclatStats clique_stats;
  const MiningResult clique = clique_eclat(db, clique_config, &clique_stats);
  const double clique_seconds = clique_watch.elapsed_seconds();

  WallStopwatch max_watch;
  MaxEclatConfig max_config;
  max_config.minsup = minsup;
  MaxEclatStats max_stats;
  const MiningResult maximal = max_eclat(db, max_config, &max_stats);
  const double max_seconds = max_watch.elapsed_seconds();

  std::printf("%-28s %10s %14s\n", "algorithm", "time (s)", "itemsets");
  print_rule('-', 86);
  std::printf("%-28s %10.3f %14zu\n", "eclat (prefix classes)",
              plain_seconds, plain.itemsets.size());
  std::printf("%-28s %10.3f %14zu   %s\n", "clique-eclat", clique_seconds,
              clique.itemsets.size(),
              clique.itemsets.size() == plain.itemsets.size() ? "(agrees)"
                                                              : "(BUG!)");
  std::printf("%-28s %10.3f %14zu   (maximal only)\n", "max-eclat",
              max_seconds, maximal.itemsets.size());
  print_rule('-', 86);
  std::printf(
      "clustering: %zu prefix classes (weight %zu) vs %zu clique "
      "sub-classes (weight %zu)\n",
      clique_stats.plain_classes, clique_stats.plain_weight,
      clique_stats.clique_subclasses, clique_stats.clique_weight);
  std::printf("clique duplicates filtered: %zu\n", clique_stats.duplicates);
  std::printf("max-eclat: %zu classes collapsed by the top-element test; "
              "%.1fx summary compression\n",
              max_stats.top_hits,
              static_cast<double>(plain.itemsets.size()) /
                  static_cast<double>(
                      std::max<std::size_t>(1, maximal.itemsets.size())));
  return clique.itemsets.size() == plain.itemsets.size() ? 0 : 1;
}
