// Fault-recovery overhead — makespan of a fault-free run vs. a run with
// one processor crash, for Par-Eclat (measured: survivors re-mine the
// dead processor's unfinished classes from replicated tid-lists and merge
// its checkpoints) and for Count Distribution (modeled: CD keeps no
// checkpoints and every processor's partial counts are needed every
// iteration, so a crash at time t costs t + a full restart).
//
// Expected shape: Par-Eclat's recovery overhead is a small fraction of the
// makespan — only the dead processor's *unfinished* classes are re-mined,
// and the tid-lists they need are already replicated — while CD's modeled
// restart overhead is ~1.5x for a mid-run crash. This is the locality
// argument of the paper carried over to robustness: after the exchange,
// Eclat's classes are independent units of recoverable work.
//
// All runs use a fully modeled clock (cpu_scale = 0) so the emitted
// numbers are deterministic and machine-independent: the JSON written to
// --out (default BENCH_fault_recovery.json) is comparable across commits.
//
//   ./bench_fault_recovery [--scale=0.02] [--support=0.001] [--json=1]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "mc/fault.hpp"
#include "parallel/count_distribution.hpp"
#include "parallel/par_eclat.hpp"

namespace {

/// Deterministic virtual-time-only accounting (see file comment).
eclat::mc::CostModel modeled_only() {
  eclat::mc::CostModel cost;
  cost.cpu_scale = 0.0;
  return cost;
}

struct Row {
  std::string config;
  double eclat_clean = 0.0;
  double eclat_crash = 0.0;    ///< measured, 1 crash mid-mining
  double cd_clean = 0.0;
  double cd_restart = 0.0;     ///< modeled, crash at t = 0.5 * makespan
  bool output_identical = false;

  double eclat_overhead() const { return eclat_crash / eclat_clean - 1.0; }
  double cd_overhead() const { return cd_restart / cd_clean - 1.0; }
};

}  // namespace

int main(int argc, char** argv) {
  const eclat::WallStopwatch bench_watch;
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);
  const bool write_json = flags.get_bool("json", true);

  const PaperDatabase& spec = kPaperDatabases[0];  // T10.I6.D800K scaled
  const HorizontalDatabase db = make_database(spec, scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Fault recovery: %s, support %.2f%%, one crash mid-mining\n",
              scaled_name(spec, scale).c_str(), support * 100.0);
  print_rule('=', 100);
  std::printf("%-14s | %11s %11s %9s | %11s %11s %9s | %s\n", "Config",
              "E clean(s)", "E crash(s)", "E ovhd", "CD clean(s)",
              "CD restart", "CD ovhd", "output");
  print_rule('-', 100);

  std::vector<Row> rows;
  for (const mc::Topology& topology : paper_topologies()) {
    if (topology.total() < 2) continue;  // need a survivor

    par::ParEclatConfig eclat_config;
    eclat_config.minsup = minsup;
    // Measure the checkpoint/recovery path in isolation: with speculation
    // on, survivors would cover the crashed processor's classes during the
    // asynchronous phase and the recovery phase this bench times would be
    // empty. bench_stragglers covers the lease/speculation path.
    eclat_config.lease.speculate = false;

    mc::Cluster clean_cluster(topology, modeled_only());
    const par::ParallelOutput clean =
        par::par_eclat(clean_cluster, db, eclat_config);

    // Kill the highest-id processor right after it checkpoints its first
    // equivalence class: survivors must re-mine its remaining classes.
    mc::FaultPlan plan;
    plan.events.push_back(mc::FaultPlan::crash_at_point(
        topology.total() - 1, "class-checkpointed"));
    mc::Cluster crash_cluster(topology, modeled_only());
    crash_cluster.set_fault_plan(plan);
    const par::ParallelOutput crashed =
        par::par_eclat(crash_cluster, db, eclat_config);

    par::CountDistributionConfig cd_config;
    cd_config.minsup = minsup;
    mc::Cluster cd_cluster(topology, modeled_only());
    const par::ParallelOutput cd =
        par::count_distribution(cd_cluster, db, cd_config);

    Row row;
    row.config = topology.label();
    row.eclat_clean = clean.total_seconds;
    row.eclat_crash = crashed.total_seconds;
    row.cd_clean = cd.total_seconds;
    // CD restart model: no checkpoints, so a crash at half-run throws away
    // all progress; a restarted (T-1)-processor run redoes everything.
    row.cd_restart = 0.5 * cd.total_seconds + cd.total_seconds;
    row.output_identical = crashed.result.itemsets == clean.result.itemsets;

    std::printf("%-14s | %11.2f %11.2f %8.1f%% | %11.2f %11.2f %8.1f%% | %s\n",
                row.config.c_str(), row.eclat_clean, row.eclat_crash,
                100.0 * row.eclat_overhead(), row.cd_clean, row.cd_restart,
                100.0 * row.cd_overhead(),
                row.output_identical ? "identical" : "DIVERGED");
    rows.push_back(row);
  }
  print_rule('-', 100);
  std::printf("Expected shape: Eclat overhead well under CD's modeled 50%% "
              "restart penalty; output always identical.\n");

  if (write_json) {
    const char* path = "BENCH_fault_recovery.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"fault_recovery\",\n");
    eclat::bench::write_backend_fields(out, "mc", "virtual",
                                       bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"database\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"support\": %g,\n  \"crash\": "
                 "\"highest-id processor after first class checkpoint\",\n"
                 "  \"rows\": [\n",
                 scaled_name(spec, scale).c_str(), scale, support);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"eclat_clean_s\": %.6f, "
                   "\"eclat_crash_s\": %.6f, \"eclat_overhead\": %.4f, "
                   "\"cd_clean_s\": %.6f, \"cd_restart_s\": %.6f, "
                   "\"cd_overhead\": %.4f, \"output_identical\": %s}%s\n",
                   row.config.c_str(), row.eclat_clean, row.eclat_crash,
                   row.eclat_overhead(), row.cd_clean, row.cd_restart,
                   row.cd_overhead(), row.output_identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
