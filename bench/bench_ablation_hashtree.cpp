// Ablation — CCPD hash-tree optimizations (paper §3, ref [16]): balancing
// the hash tree by item frequency and short-circuiting the subset search.
// Google-benchmark over the candidate-counting inner loop.
#include <benchmark/benchmark.h>

#include "apriori/apriori.hpp"
#include "apriori/candidate_gen.hpp"
#include "gen/quest.hpp"
#include "hashtree/hash_tree.hpp"
#include "vertical/vertical_db.hpp"

namespace {

using namespace eclat;

struct Workload {
  HorizontalDatabase db;
  std::vector<Itemset> candidates;
  std::vector<Count> item_counts;
};

const Workload& workload() {
  static const Workload w = [] {
    gen::QuestConfig config;
    config.num_transactions = 5000;
    config.num_items = 300;
    config.num_patterns = 100;
    config.seed = 31;
    Workload built{gen::QuestGenerator(config).generate(), {}, {}};
    built.item_counts =
        count_items(built.db.transactions(), built.db.num_items());

    // Real L2-derived 3-candidates, as Apriori would build them.
    TriangleCounter counter(built.db.num_items());
    counter.count(built.db.transactions());
    std::vector<Itemset> l2;
    for (PairKey key : counter.frequent_pairs(10)) {
      l2.push_back({pair_first(key), pair_second(key)});
    }
    built.candidates = generate_candidates(l2, true);
    return built;
  }();
  return w;
}

void count_with(benchmark::State& state, bool balanced,
                bool short_circuit) {
  const Workload& w = workload();
  HashTreeConfig config;
  config.short_circuit = short_circuit;
  const std::vector<std::uint32_t> map =
      balanced ? balanced_bucket_map(w.item_counts, config.fanout)
               : std::vector<std::uint32_t>{};
  for (auto _ : state) {
    HashTree tree(3, config, map);
    for (const Itemset& candidate : w.candidates) tree.insert(candidate);
    tree.count_all(w.db.transactions());
    benchmark::DoNotOptimize(tree.size());
  }
  state.counters["candidates"] =
      static_cast<double>(w.candidates.size());
}

void BM_HashTreePlain(benchmark::State& state) {
  count_with(state, /*balanced=*/false, /*short_circuit=*/false);
}
BENCHMARK(BM_HashTreePlain);

void BM_HashTreeShortCircuit(benchmark::State& state) {
  count_with(state, /*balanced=*/false, /*short_circuit=*/true);
}
BENCHMARK(BM_HashTreeShortCircuit);

void BM_HashTreeBalanced(benchmark::State& state) {
  count_with(state, /*balanced=*/true, /*short_circuit=*/false);
}
BENCHMARK(BM_HashTreeBalanced);

void BM_HashTreeBalancedShortCircuit(benchmark::State& state) {
  count_with(state, /*balanced=*/true, /*short_circuit=*/true);
}
BENCHMARK(BM_HashTreeBalancedShortCircuit);

}  // namespace

BENCHMARK_MAIN();
