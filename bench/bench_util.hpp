// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures.
//
// The paper's databases are T10.I6.D800K … T10.I6.D6400K (N = 1000 items,
// |L| = 2000 patterns, minsup 0.1%). The benchmarks default to a 1/50
// scale (D16K … D128K) so a full sweep finishes on a laptop; pass
// --scale=1.0 to regenerate at paper size. Scaling |D| leaves the paper's
// *relative* behaviour intact: support is relative (0.1%), and every
// modeled cost is linear in bytes.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.hpp"
#include "common/result.hpp"
#include "data/horizontal.hpp"
#include "gen/quest.hpp"
#include "mc/topology.hpp"
#include "vertical/simd/dispatch.hpp"

namespace eclat::bench {

/// The paper's four evaluation databases, |D| in thousands at scale 1.
struct PaperDatabase {
  const char* name;          ///< paper's label
  std::size_t transactions;  ///< |D| at scale 1.0
};

inline constexpr PaperDatabase kPaperDatabases[] = {
    {"T10.I6.D800K", 800'000},
    {"T10.I6.D1600K", 1'600'000},
    {"T10.I6.D3200K", 3'200'000},
    {"T10.I6.D6400K", 6'400'000},
};

/// The paper's evaluation support: 0.1%.
inline constexpr double kPaperSupport = 0.001;

/// Generate a paper database at the given scale (same generator seed per
/// database name, so repeated benchmark runs see identical data).
inline HorizontalDatabase make_database(const PaperDatabase& spec,
                                        double scale) {
  gen::QuestConfig config;  // defaults are the paper's T10.I6 parameters
  config.num_transactions = static_cast<std::size_t>(
      static_cast<double>(spec.transactions) * scale);
  config.seed = 1997 + spec.transactions;  // stable per database
  return gen::QuestGenerator(config).generate();
}

inline std::string scaled_name(const PaperDatabase& spec, double scale) {
  if (scale == 1.0) return spec.name;
  const std::size_t d = static_cast<std::size_t>(
      static_cast<double>(spec.transactions) * scale);
  return std::string(spec.name) + " @ " + std::to_string(d / 1000) + "K";
}

/// The processor configurations of the paper's Table 2 / Figure 7
/// (P = processors per host, H = hosts).
inline std::vector<mc::Topology> paper_topologies() {
  return {
      {1, 1},  // sequential baseline
      {2, 1}, {2, 2}, {4, 1}, {2, 4}, {4, 2},
      {8, 1}, {4, 4}, {8, 2}, {8, 4},  // up to T = 32
  };
}

inline void print_rule(char fill = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(fill);
  std::putchar('\n');
}

/// Uniform execution/timing stamp for BENCH_*.json headers, emitted right
/// after the "benchmark" field by every bench that writes JSON:
///   backend — which execution substrate produced the *_s row fields
///             ("mc" = virtual-time simulator, "threads" = native pool,
///             "host" = plain sequential execution);
///   timing  — which clock those fields are in ("virtual" under the
///             simulator, "wall" for native runs);
///   bench_wall_seconds — host wall clock of the whole bench run, so even
///             virtual-time trajectories carry a real-time anchor.
/// CPU feature honesty: every header also records what the build host
/// offers (cpu_avx2 / cpu_avx512bw) and which kernel table the runtime
/// dispatcher actually selected (simd_dispatch, which ECLAT_FORCE_SCALAR
/// pins to "scalar"), so a number can never be mistaken for having run on
/// a wider ISA than it did.
inline void write_backend_fields(std::FILE* out, const char* backend,
                                 const char* timing, double wall_seconds) {
  std::fprintf(out,
               "  \"backend\": \"%s\",\n  \"timing\": \"%s\",\n"
               "  \"bench_wall_seconds\": %.3f,\n"
               "  \"cpu_avx2\": %s,\n  \"cpu_avx512bw\": %s,\n"
               "  \"simd_dispatch\": \"%s\",\n",
               backend, timing, wall_seconds,
               simd::cpu_has_avx2() ? "true" : "false",
               simd::cpu_has_avx512bw() ? "true" : "false",
               simd::isa_name(simd::kernels().level));
}

}  // namespace eclat::bench
