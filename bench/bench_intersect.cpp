// Micro-benchmark of the tid-list intersection kernels — the inner loop of
// Eclat (§4.2, §5.3). Run with google-benchmark.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "vertical/tidlist.hpp"

namespace {

using eclat::Rng;
using eclat::TidList;

/// Random sorted tid-list over [0, universe) with the given density.
TidList random_tidlist(Rng& rng, eclat::Tid universe, double density) {
  TidList tids;
  tids.reserve(static_cast<std::size_t>(universe * density * 1.2));
  for (eclat::Tid t = 0; t < universe; ++t) {
    if (rng.uniform() < density) tids.push_back(t);
  }
  return tids;
}

void BM_IntersectMerge(benchmark::State& state) {
  Rng rng(1);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.1);
  const TidList b = random_tidlist(rng, universe, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect(a, b));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (a.size() + b.size())));
}
BENCHMARK(BM_IntersectMerge)->Range(1 << 10, 1 << 18);

void BM_IntersectShortCircuitHit(benchmark::State& state) {
  // Lists dense enough that the result clears minsup: the short-circuit
  // bound never fires, measuring its bookkeeping overhead.
  Rng rng(2);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.5);
  const TidList b = random_tidlist(rng, universe, 0.5);
  const eclat::Count minsup = universe / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_short_circuit(a, b, minsup));
  }
}
BENCHMARK(BM_IntersectShortCircuitHit)->Range(1 << 10, 1 << 18);

void BM_IntersectShortCircuitMiss(benchmark::State& state) {
  // Nearly disjoint lists with a high minsup: the bound fires early and
  // the kernel quits after a fraction of the scan — the paper's win.
  Rng rng(3);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  TidList a;
  TidList b;
  for (eclat::Tid t = 0; t < universe; ++t) {
    (t % 2 == 0 ? a : b).push_back(t);  // perfectly disjoint
  }
  const eclat::Count minsup = universe / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_short_circuit(a, b, minsup));
  }
}
BENCHMARK(BM_IntersectShortCircuitMiss)->Range(1 << 10, 1 << 18);

void BM_IntersectGallopSkewed(benchmark::State& state) {
  // 1000:1 size skew — galloping's home turf.
  Rng rng(4);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList small = random_tidlist(rng, universe, 0.001);
  const TidList large = random_tidlist(rng, universe, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_gallop(small, large));
  }
}
BENCHMARK(BM_IntersectGallopSkewed)->Range(1 << 12, 1 << 20);

void BM_IntersectMergeSkewed(benchmark::State& state) {
  // The same skewed inputs through the merge kernel, for comparison.
  Rng rng(4);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList small = random_tidlist(rng, universe, 0.001);
  const TidList large = random_tidlist(rng, universe, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect(small, large));
  }
}
BENCHMARK(BM_IntersectMergeSkewed)->Range(1 << 12, 1 << 20);

void BM_IntersectionSizeOnly(benchmark::State& state) {
  Rng rng(5);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.1);
  const TidList b = random_tidlist(rng, universe, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersection_size(a, b));
  }
}
BENCHMARK(BM_IntersectionSizeOnly)->Range(1 << 10, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
