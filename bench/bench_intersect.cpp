// Micro-benchmark of the tid-list intersection kernels — the inner loop of
// Eclat (§4.2, §5.3). Run with google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "vertical/tidlist.hpp"
#include "vertical/tidset.hpp"

namespace {

using eclat::IntersectKernel;
using eclat::Rng;
using eclat::TidList;
using eclat::TidSet;

/// Random sorted tid-list over [0, universe) with the given density.
TidList random_tidlist(Rng& rng, eclat::Tid universe, double density) {
  TidList tids;
  tids.reserve(static_cast<std::size_t>(universe * density * 1.2));
  for (eclat::Tid t = 0; t < universe; ++t) {
    if (rng.uniform() < density) tids.push_back(t);
  }
  return tids;
}

void BM_IntersectMerge(benchmark::State& state) {
  Rng rng(1);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.1);
  const TidList b = random_tidlist(rng, universe, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect(a, b));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (a.size() + b.size())));
}
BENCHMARK(BM_IntersectMerge)->Range(1 << 10, 1 << 18);

void BM_IntersectShortCircuitHit(benchmark::State& state) {
  // Lists dense enough that the result clears minsup: the short-circuit
  // bound never fires, measuring its bookkeeping overhead.
  Rng rng(2);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.5);
  const TidList b = random_tidlist(rng, universe, 0.5);
  const eclat::Count minsup = universe / 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_short_circuit(a, b, minsup));
  }
}
BENCHMARK(BM_IntersectShortCircuitHit)->Range(1 << 10, 1 << 18);

void BM_IntersectShortCircuitMiss(benchmark::State& state) {
  // Nearly disjoint lists with a high minsup: the bound fires early and
  // the kernel quits after a fraction of the scan — the paper's win.
  Rng rng(3);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  TidList a;
  TidList b;
  for (eclat::Tid t = 0; t < universe; ++t) {
    (t % 2 == 0 ? a : b).push_back(t);  // perfectly disjoint
  }
  const eclat::Count minsup = universe / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_short_circuit(a, b, minsup));
  }
}
BENCHMARK(BM_IntersectShortCircuitMiss)->Range(1 << 10, 1 << 18);

void BM_IntersectGallopSkewed(benchmark::State& state) {
  // 1000:1 size skew — galloping's home turf.
  Rng rng(4);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList small = random_tidlist(rng, universe, 0.001);
  const TidList large = random_tidlist(rng, universe, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect_gallop(small, large));
  }
}
BENCHMARK(BM_IntersectGallopSkewed)->Range(1 << 12, 1 << 20);

void BM_IntersectMergeSkewed(benchmark::State& state) {
  // The same skewed inputs through the merge kernel, for comparison.
  Rng rng(4);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList small = random_tidlist(rng, universe, 0.001);
  const TidList large = random_tidlist(rng, universe, 0.5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersect(small, large));
  }
}
BENCHMARK(BM_IntersectMergeSkewed)->Range(1 << 12, 1 << 20);

// --- Density sweep through the dispatched TidSet kernels -------------------
//
// Equal-density pairs over a fixed 64K-tid universe, density from 0.1% up
// to 50%. The threshold (n * 64 >= U, i.e. density 1/64) sits inside the
// sweep, so kAuto runs sparse merge at the low end and the dense word-AND
// at the high end; kBitset shows what forcing the bitset costs on sparse
// inputs, kMergeShortCircuit what the merge costs on dense ones.

constexpr double kSweepDensities[] = {0.001, 0.01, 0.05, 0.1, 0.25, 0.5};
constexpr eclat::Tid kSweepUniverse = 1 << 16;

void density_sweep(benchmark::State& state, IntersectKernel kernel) {
  Rng rng(6);
  const double density = kSweepDensities[state.range(0)];
  const TidList a = random_tidlist(rng, kSweepUniverse, density);
  const TidList b = random_tidlist(rng, kSweepUniverse, density);
  TidSet sa;
  TidSet sb;
  TidSet out;
  eclat::seed_tidset(a, kSweepUniverse, kernel, sa, nullptr);
  eclat::seed_tidset(b, kSweepUniverse, kernel, sb, nullptr);
  for (auto _ : state) {
    bool alive = eclat::intersect_into(sa, sb, 1, kernel, kSweepUniverse,
                                       out, nullptr);
    benchmark::DoNotOptimize(alive);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * (a.size() + b.size())));
  state.SetLabel("density=" + std::to_string(density));
}

void BM_IntersectDensityMerge(benchmark::State& state) {
  density_sweep(state, IntersectKernel::kMergeShortCircuit);
}
BENCHMARK(BM_IntersectDensityMerge)->DenseRange(0, 5);

void BM_IntersectDensityBitset(benchmark::State& state) {
  density_sweep(state, IntersectKernel::kBitset);
}
BENCHMARK(BM_IntersectDensityBitset)->DenseRange(0, 5);

void BM_IntersectDensityAuto(benchmark::State& state) {
  density_sweep(state, IntersectKernel::kAuto);
}
BENCHMARK(BM_IntersectDensityAuto)->DenseRange(0, 5);

void BM_IntersectionSizeOnly(benchmark::State& state) {
  Rng rng(5);
  const auto universe = static_cast<eclat::Tid>(state.range(0));
  const TidList a = random_tidlist(rng, universe, 0.1);
  const TidList b = random_tidlist(rng, universe, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(eclat::intersection_size(a, b));
  }
}
BENCHMARK(BM_IntersectionSizeOnly)->Range(1 << 10, 1 << 18);

}  // namespace

BENCHMARK_MAIN();
