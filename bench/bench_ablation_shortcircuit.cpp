// Ablation — short-circuited intersections (paper §5.3): Eclat with the
// minsup-bounded early-exit kernel vs the plain merge kernel. Reports
// mining time, intersection counts, and how many intersections aborted
// early.
//
//   ./bench_ablation_shortcircuit [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "eclat/eclat_seq.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Ablation: short-circuit intersections on %s, support %.2f%%\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0);
  print_rule('=');
  std::printf("%-18s %10s %14s %14s %16s\n", "kernel", "time (s)",
              "intersections", "aborted early", "tids scanned");
  print_rule();

  struct Case {
    const char* name;
    IntersectKernel kernel;
  };
  const Case cases[] = {
      {"merge", IntersectKernel::kMerge},
      {"short-circuit", IntersectKernel::kMergeShortCircuit},
      {"gallop", IntersectKernel::kGallop},
  };
  for (const Case& c : cases) {
    EclatConfig config;
    config.minsup = minsup;
    config.kernel = c.kernel;
    config.include_singletons = false;
    IntersectStats stats;
    WallStopwatch watch;
    const MiningResult result = eclat_sequential(db, config, &stats);
    const double seconds = watch.elapsed_seconds();
    std::printf("%-18s %10.3f %14llu %14llu %16llu\n", c.name, seconds,
                static_cast<unsigned long long>(stats.intersections),
                static_cast<unsigned long long>(stats.short_circuited),
                static_cast<unsigned long long>(stats.tids_scanned));
    (void)result;
  }
  print_rule();
  std::printf("Expected: short-circuit aborts a large share of failing "
              "intersections and never changes the result.\n");
  return 0;
}
