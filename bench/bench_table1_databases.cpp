// Table 1 — "Database properties": |D|, |T|, |I| and on-disk size of the
// four T10.I6 evaluation databases.
//
// Paper values (at scale 1.0):
//   T10.I6.D800K   |D| = 800,000    |T| = 10  |I| = 6   35 MB
//   T10.I6.D1600K  |D| = 1,600,000  |T| = 10  |I| = 6   68 MB
//   T10.I6.D3200K  |D| = 3,200,000  |T| = 10  |I| = 6  138 MB
//   T10.I6.D6400K  |D| = 6,400,000  |T| = 10  |I| = 6  274 MB
//
//   ./bench_table1_databases [--scale=0.02]
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);

  std::printf("Table 1: database properties (scale %.3g of paper sizes)\n",
              scale);
  print_rule('=');
  std::printf("%-24s %12s %6s %6s %12s %14s\n", "Database", "|D|", "|T|",
              "|I|", "size (MB)", "paper MB/scale");
  print_rule();

  const double paper_mb[] = {35, 68, 138, 274};
  int row = 0;
  for (const PaperDatabase& spec : kPaperDatabases) {
    const HorizontalDatabase db = make_database(spec, scale);
    const DatabaseStats stats = compute_stats(db);
    std::printf("%-24s %12zu %6.1f %6d %12.2f %14.2f\n",
                scaled_name(spec, scale).c_str(), stats.num_transactions,
                stats.avg_transaction_length, 6,
                static_cast<double>(stats.byte_size) / 1e6,
                paper_mb[row] * scale);
    ++row;
  }
  print_rule();
  std::printf("N = 1000 items, |L| = 2000 maximal potentially frequent "
              "itemsets (paper parameters).\n");
  return 0;
}
