// Sampling evaluation (companion work [17], Toivonen [15]): accuracy and
// cost of sample-based mining as the sample fraction grows, plus
// Toivonen's exact algorithm with its negative-border certification.
//
//   ./bench_sampling [--scale=0.02] [--support=0.0025]
#include <cstdio>

#include "apriori/apriori.hpp"
#include "bench_util.hpp"
#include "common/clock.hpp"
#include "sampling/sampling.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", 0.01);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  AprioriConfig exact_config;
  exact_config.minsup = absolute_support(support, db.size());
  WallStopwatch exact_watch;
  const MiningResult exact = apriori(db, exact_config);
  const double exact_seconds = exact_watch.elapsed_seconds();

  std::printf("Sampling on %s, support %.2f%% (exact: %zu itemsets, "
              "%.2fs)\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0, exact.itemsets.size(), exact_seconds);
  print_rule('=', 86);
  std::printf("%-10s %10s %10s %10s %10s\n", "fraction", "time (s)",
              "precision", "recall", "speedup");
  print_rule('-', 86);

  for (const double fraction : {0.05, 0.1, 0.25, 0.5}) {
    sampling::SampleConfig config;
    config.sample_fraction = fraction;
    config.support_scale = 0.8;
    WallStopwatch watch;
    const MiningResult approx = sampling::sample_mine(db, support, config);
    const double seconds = watch.elapsed_seconds();
    const sampling::Accuracy accuracy = sampling::compare(exact, approx);
    std::printf("%9.0f%% %10.3f %9.1f%% %9.1f%% %9.1fx\n",
                fraction * 100.0, seconds, accuracy.precision * 100.0,
                accuracy.recall * 100.0, exact_seconds / seconds);
  }
  print_rule('-', 86);

  // Toivonen: one verified pass, exactness certificate.
  for (const double fraction : {0.25, 0.5}) {
    sampling::SampleConfig config;
    config.sample_fraction = fraction;
    config.support_scale = 0.75;
    WallStopwatch watch;
    const sampling::ToivonenOutcome outcome =
        sampling::toivonen_mine(db, support, config);
    const sampling::Accuracy accuracy =
        sampling::compare(exact, outcome.result);
    std::printf("toivonen %3.0f%% sample: %.3fs, certified=%s, border=%zu "
                "(%zu failures), recall %.1f%%\n",
                fraction * 100.0, watch.elapsed_seconds(),
                outcome.certified ? "yes" : "no", outcome.border_size,
                outcome.border_failures, accuracy.recall * 100.0);
  }
  print_rule('-', 86);
  std::printf("Expected: precision/recall climb toward 100%% with the "
              "fraction; Toivonen certifies\nexactness when no border "
              "itemset turns out frequent.\n");
  return 0;
}
