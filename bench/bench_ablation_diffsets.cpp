// Ablation — diffsets (dEclat) vs tid-list intersections: identical
// results; on dense data the diffsets shrink the carried sets and the
// bytes touched per join.
//
//   ./bench_ablation_diffsets [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "eclat/eclat_seq.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);

  std::printf("Ablation: tidsets vs diffsets (dEclat)\n");
  print_rule('=', 90);
  std::printf("%-10s %-10s | %10s %16s | %10s %16s | %6s\n", "support",
              "itemsets", "tids (s)", "tids scanned", "diffs (s)",
              "diffs scanned", "agree");
  print_rule('-', 90);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  for (const double support : {0.002, 0.001, 0.0005}) {
    const Count minsup = absolute_support(support, db.size());

    EclatConfig tidset_config;
    tidset_config.minsup = minsup;
    tidset_config.include_singletons = false;
    IntersectStats tidset_stats;
    WallStopwatch tidset_watch;
    const MiningResult tidset =
        eclat_sequential(db, tidset_config, &tidset_stats);
    const double tidset_seconds = tidset_watch.elapsed_seconds();

    EclatConfig diffset_config = tidset_config;
    diffset_config.use_diffsets = true;
    IntersectStats diffset_stats;
    WallStopwatch diffset_watch;
    const MiningResult diffset =
        eclat_sequential(db, diffset_config, &diffset_stats);
    const double diffset_seconds = diffset_watch.elapsed_seconds();

    std::printf("%9.2f%% %-10zu | %10.3f %16llu | %10.3f %16llu | %6s\n",
                support * 100.0, tidset.itemsets.size(), tidset_seconds,
                static_cast<unsigned long long>(tidset_stats.tids_scanned),
                diffset_seconds,
                static_cast<unsigned long long>(diffset_stats.tids_scanned),
                tidset.itemsets.size() == diffset.itemsets.size() ? "yes"
                                                                  : "NO");
  }
  print_rule('-', 90);
  std::printf("Expected: diffsets touch fewer elements as support drops "
              "(denser lattice).\n");
  return 0;
}
