// Straggler mitigation — makespan of Par-Eclat with lease-based
// speculative re-execution off vs. on, under (a) a persistent disk-stall
// straggler of varying severity and (b) a silent hang (FaultKind::kHang),
// across the paper's processor configurations.
//
// Expected shape: with speculation off the asynchronous phase is bounded
// by the straggler (a 10x disk stall shows up almost 10x in the phase);
// with speculation on, idle survivors take over the straggler's classes
// once their leases expire — each class carries its own stalled disk read
// with it, so migration removes the stalled work rather than hiding it —
// and the makespan returns to within a lease horizon of the healthy run.
// The fault-free speculation overhead (clean on vs. off) is the cost of
// the idle speculators' bounded polling and should stay small.
//
// Owners renew their leases at every class checkpoint, so the detector's
// timescale is the *inter-checkpoint gap*, not the phase: the lease is
// sized per configuration as a multiple (--lease-gaps, default 3) of the
// fault-free mean gap, estimated from the clean run as
// asynchronous_seconds * T / #classes. Below that multiple a straggler is
// tolerated (a 2x stall often renews in time on small T — that is the
// threshold doing its job), above it the lease expires mid-read and the
// class migrates. See EXPERIMENTS.md "straggler ablation" for the sweep.
//
// All runs use a fully modeled clock (cpu_scale = 0) so the emitted
// numbers are deterministic and machine-independent: the JSON written to
// BENCH_stragglers.json is comparable across commits.
//
//   ./bench_stragglers [--scale=0.02] [--support=0.001] [--lease-gaps=3]
//                      [--max-retransmits=4] [--hang=1] [--json=1]
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "mc/fault.hpp"
#include "parallel/par_eclat.hpp"

namespace {

/// Deterministic virtual-time-only accounting (see file comment).
eclat::mc::CostModel modeled_only() {
  eclat::mc::CostModel cost;
  cost.cpu_scale = 0.0;
  return cost;
}

constexpr double kSeverities[] = {2.0, 10.0};

/// Equivalence classes the asynchronous phase actually mines (>= 2
/// members, i.e. >= 2 frequent 2-itemsets sharing a prefix), recovered
/// from a clean run's output — the bench-side estimate of how many
/// checkpoints (lease renewals) each processor produces.
std::size_t mined_class_count(const eclat::MiningResult& result) {
  std::map<eclat::Item, std::size_t> members;
  for (const eclat::FrequentItemset& f : result.itemsets) {
    if (f.items.size() == 2) ++members[f.items[0]];
  }
  std::size_t classes = 0;
  for (const auto& [prefix, count] : members) {
    if (count >= 2) ++classes;
  }
  return classes;
}

struct StallCell {
  double severity = 0.0;
  double off_s = 0.0;
  double on_s = 0.0;
  double speedup() const { return off_s / on_s; }
};

struct Row {
  std::string config;
  double lease_duration = 0.0;
  double clean_off = 0.0;
  double clean_on = 0.0;
  std::vector<StallCell> stalls;
  double hang_off = 0.0;  ///< unbounded hang, covered by crash recovery
  double hang_on = 0.0;   ///< unbounded hang, covered by speculation
  bool output_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const eclat::WallStopwatch bench_watch;
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);
  const double lease_gaps = flags.get_double("lease-gaps", 3.0);
  const std::uint64_t max_retransmits = flags.get_uint("max-retransmits", 4);
  const bool with_hang = flags.get_bool("hang", true);
  const bool write_json = flags.get_bool("json", true);

  const PaperDatabase& spec = kPaperDatabases[0];  // T10.I6.D800K scaled
  const HorizontalDatabase db = make_database(spec, scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf(
      "Stragglers: %s, support %.2f%%, stall/hang on the highest-id "
      "processor, lease = %.1fx the clean inter-checkpoint gap\n",
      scaled_name(spec, scale).c_str(), support * 100.0, lease_gaps);
  print_rule('=', 108);
  std::printf("%-8s | %9s %9s | %25s | %25s | %19s | %s\n", "Config",
              "clean off", "clean on", "stall x2   off/on  (gain)",
              "stall x10  off/on  (gain)", "hang   off/on", "output");
  print_rule('-', 108);

  std::vector<Row> rows;
  for (const mc::Topology& topology : paper_topologies()) {
    if (topology.total() < 2) continue;  // need an idle survivor
    const std::size_t victim = topology.total() - 1;

    auto run = [&](const mc::FaultPlan& plan, bool speculate,
                   double lease_duration) {
      mc::Cluster cluster(topology, modeled_only());
      cluster.set_fault_plan(plan);
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.max_retransmits = static_cast<std::size_t>(max_retransmits);
      config.lease.speculate = speculate;
      if (lease_duration > 0.0) config.lease.lease_duration = lease_duration;
      return par::par_eclat(cluster, db, config);
    };

    Row row;
    row.config = topology.label();
    const par::ParallelOutput clean_off = run({}, false, 0.0);
    row.clean_off = clean_off.total_seconds;
    const std::size_t classes = mined_class_count(clean_off.result);
    row.lease_duration = lease_gaps *
                         clean_off.phase_seconds.at("asynchronous") *
                         static_cast<double>(topology.total()) /
                         static_cast<double>(classes == 0 ? 1 : classes);
    const par::ParallelOutput clean_on = run({}, true, row.lease_duration);
    row.clean_on = clean_on.total_seconds;
    row.output_identical =
        clean_on.result.itemsets == clean_off.result.itemsets;

    for (const double severity : kSeverities) {
      mc::FaultPlan plan;
      plan.events.push_back(mc::FaultPlan::disk_stall(
          victim, severity, "asynchronous", /*persistent=*/true));
      StallCell cell;
      cell.severity = severity;
      const par::ParallelOutput off = run(plan, false, 0.0);
      const par::ParallelOutput on = run(plan, true, row.lease_duration);
      cell.off_s = off.total_seconds;
      cell.on_s = on.total_seconds;
      row.output_identical =
          row.output_identical &&
          off.result.itemsets == clean_off.result.itemsets &&
          on.result.itemsets == clean_off.result.itemsets;
      row.stalls.push_back(cell);
    }

    if (with_hang) {
      mc::FaultPlan plan;
      plan.events.push_back(
          mc::FaultPlan::hang_at_point(victim, "class-checkpointed"));
      const par::ParallelOutput off = run(plan, false, 0.0);
      const par::ParallelOutput on = run(plan, true, row.lease_duration);
      row.hang_off = off.total_seconds;
      row.hang_on = on.total_seconds;
      row.output_identical =
          row.output_identical &&
          off.result.itemsets == clean_off.result.itemsets &&
          on.result.itemsets == clean_off.result.itemsets;
    }

    std::printf(
        "%-8s | %9.3f %9.3f | %8.3f /%8.3f (%4.2fx) | %8.3f /%8.3f (%4.2fx) "
        "| %8.3f /%8.3f | %s\n",
        row.config.c_str(), row.clean_off, row.clean_on, row.stalls[0].off_s,
        row.stalls[0].on_s, row.stalls[0].speedup(), row.stalls[1].off_s,
        row.stalls[1].on_s, row.stalls[1].speedup(), row.hang_off,
        row.hang_on, row.output_identical ? "identical" : "DIVERGED");
    rows.push_back(row);
  }
  print_rule('-', 108);
  std::printf(
      "Expected shape: x10 stall gain well above 1 everywhere; clean "
      "on/off gap within one lease horizon; output always identical.\n");

  if (write_json) {
    const char* path = "BENCH_stragglers.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"stragglers\",\n");
    eclat::bench::write_backend_fields(out, "mc", "virtual",
                                       bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"database\": \"%s\",\n  \"scale\": %g,\n"
                 "  \"support\": %g,\n  \"lease_gaps\": %g,\n"
                 "  \"straggler\": "
                 "\"highest-id processor, asynchronous phase\",\n"
                 "  \"rows\": [\n",
                 scaled_name(spec, scale).c_str(), scale, support,
                 lease_gaps);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"lease_s\": %.6f, "
                   "\"clean_off_s\": %.6f, \"clean_on_s\": %.6f,\n"
                   "     \"stalls\": [",
                   row.config.c_str(), row.lease_duration, row.clean_off,
                   row.clean_on);
      for (std::size_t s = 0; s < row.stalls.size(); ++s) {
        const StallCell& cell = row.stalls[s];
        std::fprintf(out,
                     "{\"severity\": %g, \"off_s\": %.6f, \"on_s\": %.6f, "
                     "\"speedup\": %.4f}%s",
                     cell.severity, cell.off_s, cell.on_s, cell.speedup(),
                     s + 1 < row.stalls.size() ? ", " : "");
      }
      std::fprintf(out,
                   "],\n     \"hang_off_s\": %.6f, \"hang_on_s\": %.6f, "
                   "\"output_identical\": %s}%s\n",
                   row.hang_off, row.hang_on,
                   row.output_identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
