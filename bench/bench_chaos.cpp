// Bounded-replication recovery cost under compound fault schedules.
//
// Two experiments, both on the deterministic virtual clock (cpu_scale =
// 0, so the JSON is comparable across commits):
//
//   1. crash_overhead — one crash at the victim's first asynchronous
//      disk read (before any result checkpoint), per replication level
//      R in {1, 2, all}: recovery makespan overhead vs. the fault-free
//      run, plus the replicated-image footprint bought at each level.
//      The acceptance line: R=2 recovery overhead stays within 2x of
//      full replication's — bounded replication trades a constant-factor
//      slower repair (the occasional lineage rebuild at R=1, replica
//      streams at R=2) for an O(nodes/R) smaller footprint.
//
//   2. sweep — seeded random compound schedules (tools/chaos generator)
//      per (replication, intensity) cell: completion/abort rates, mean
//      makespan overhead of completed runs, lineage rebuilds and fenced
//      rejections. This is the chaos harness's contract quantified: how
//      often schedules survive, and what surviving costs.
//
//   ./bench_chaos [--transactions=400] [--seeds=25] [--json=1]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "chaos.hpp"
#include "common/clock.hpp"
#include "common/flags.hpp"
#include "mc/fault.hpp"

namespace {

struct CrashRow {
  std::string level;
  double clean_makespan = 0.0;
  double crash_makespan = 0.0;
  std::uint64_t lineage = 0;
  std::uint64_t replica_copies = 0;
  std::uint64_t image_bytes = 0;

  double overhead() const { return crash_makespan / clean_makespan - 1.0; }
};

struct SweepRow {
  std::string level;
  std::string intensity;
  std::size_t runs = 0;
  std::size_t completed = 0;
  std::size_t aborted = 0;
  double mean_overhead = 0.0;  ///< completed runs only
  std::uint64_t lineage = 0;
  std::uint64_t fenced = 0;

  double abort_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(aborted) / runs;
  }
};

std::string level_name(std::size_t replication) {
  return replication == 0 ? "full" : "R=" + std::to_string(replication);
}

}  // namespace

int main(int argc, char** argv) {
  const eclat::WallStopwatch bench_watch;
  using namespace eclat;
  using namespace eclat::chaos;
  const Flags flags(argc, argv);
  const std::size_t transactions = flags.get_uint("transactions", 400);
  const std::size_t seeds = flags.get_uint("seeds", 25);
  const bool write_json = flags.get_bool("json", true);

  const HorizontalDatabase db = chaos_database(1997, transactions);
  const std::size_t levels[] = {1, 2, 0};

  // Recovery routes through the post-gather rounds (not speculative
  // backups) so the replica/lineage paths are what the overhead measures;
  // bench_stragglers covers the lease path.
  ChaosOptions base;
  base.speculate = false;

  const ChaosRun clean = run_plan(db, mc::FaultPlan{}, base);
  if (!clean.completed) {
    std::fprintf(stderr, "fault-free run failed: %s\n", clean.error.c_str());
    return 1;
  }

  // --- Experiment 1: single-crash recovery overhead per level. ---
  std::printf("Chaos recovery: %zu transactions, crash at first async read\n",
              transactions);
  bench::print_rule('=', 78);
  std::printf("%-6s | %10s %10s %8s | %8s %8s %12s\n", "Level", "clean(s)",
              "crash(s)", "ovhd", "lineage", "copies", "image bytes");
  bench::print_rule('-', 78);

  std::vector<CrashRow> crash_rows;
  for (const std::size_t replication : levels) {
    ChaosOptions options = base;
    options.replication = replication;
    const ChaosRun level_clean = run_plan(db, mc::FaultPlan{}, options);

    // Highest-id processor dies before checkpointing anything: every one
    // of its classes must be re-mined from a replica or by lineage.
    mc::FaultPlan plan;
    plan.events.push_back(mc::FaultPlan::crash(
        options.topology.total() - 1, mc::FaultOp::kDiskRead,
        "asynchronous"));
    const ChaosRun crashed = run_plan(db, plan, options);
    if (!crashed.completed) {
      std::fprintf(stderr, "crash run at %s failed: %s\n",
                   level_name(replication).c_str(), crashed.error.c_str());
      return 1;
    }

    CrashRow row;
    row.level = level_name(replication);
    row.clean_makespan = level_clean.makespan;
    row.crash_makespan = crashed.makespan;
    row.lineage = crashed.lineage_rebuilds;
    row.replica_copies = crashed.replica_copies;
    row.image_bytes = crashed.image_bytes;
    std::printf("%-6s | %10.3f %10.3f %7.1f%% | %8llu %8llu %12llu\n",
                row.level.c_str(), row.clean_makespan, row.crash_makespan,
                100.0 * row.overhead(),
                static_cast<unsigned long long>(row.lineage),
                static_cast<unsigned long long>(row.replica_copies),
                static_cast<unsigned long long>(row.image_bytes));
    crash_rows.push_back(row);
  }
  bench::print_rule('-', 78);

  // The acceptance ratio: bounded replication must not blow up recovery.
  const double full_overhead = crash_rows.back().overhead();
  const double r2_overhead = crash_rows[1].overhead();
  const double ratio =
      full_overhead <= 0.0 ? 1.0 : r2_overhead / full_overhead;
  std::printf("R=2 overhead / full-replication overhead: %.2fx "
              "(acceptance: <= 2x)\n\n",
              ratio);

  // --- Experiment 2: seeded compound-schedule sweep per (level,
  // intensity). ---
  std::printf("Chaos sweep: %zu seeds per cell\n", seeds);
  bench::print_rule('=', 78);
  std::printf("%-6s %-7s | %5s %5s %6s | %9s %8s %7s\n", "Level", "mix",
              "done", "abort", "rate", "mean ovhd", "lineage", "fenced");
  bench::print_rule('-', 78);

  std::vector<SweepRow> sweep_rows;
  const struct {
    const char* name;
    std::size_t min_events;
    std::size_t max_events;
  } intensities[] = {{"light", 1, 2}, {"heavy", 3, 6}};
  for (const std::size_t replication : levels) {
    ChaosOptions options = base;
    options.replication = replication;
    for (const auto& intensity : intensities) {
      ChaosKnobs knobs;
      knobs.makespan_hint = clean.makespan;
      knobs.min_events = intensity.min_events;
      knobs.max_events = intensity.max_events;

      SweepRow row;
      row.level = level_name(replication);
      row.intensity = intensity.name;
      double overhead_sum = 0.0;
      for (std::uint64_t seed = 0; seed < seeds; ++seed) {
        const mc::FaultPlan plan = generate_plan(seed, knobs);
        const ChaosRun run = run_plan(db, plan, options);
        ++row.runs;
        if (run.completed) {
          ++row.completed;
          overhead_sum += run.makespan / clean.makespan - 1.0;
        } else if (run.clean_abort) {
          ++row.aborted;
        } else {
          std::fprintf(stderr, "invariant broke at %s/%s seed %llu: %s\n",
                       row.level.c_str(), row.intensity.c_str(),
                       static_cast<unsigned long long>(seed),
                       run.error.c_str());
          return 1;
        }
        row.lineage += run.lineage_rebuilds;
        row.fenced += run.fenced_rejections;
      }
      row.mean_overhead =
          row.completed == 0 ? 0.0 : overhead_sum / row.completed;
      std::printf("%-6s %-7s | %5zu %5zu %5.0f%% | %8.1f%% %8llu %7llu\n",
                  row.level.c_str(), row.intensity.c_str(), row.completed,
                  row.aborted, 100.0 * row.abort_rate(),
                  100.0 * row.mean_overhead,
                  static_cast<unsigned long long>(row.lineage),
                  static_cast<unsigned long long>(row.fenced));
      sweep_rows.push_back(row);
    }
  }
  bench::print_rule('-', 78);
  std::printf("Expected shape: lineage rebuilds concentrate at bounded R "
              "(sole-holder loss; full replication never needs them), heavy "
              "mixes cost more than light, and completed runs stay within a "
              "small factor of the clean makespan.\n");

  if (write_json) {
    const char* path = "BENCH_chaos.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"chaos\",\n");
    eclat::bench::write_backend_fields(out, "mc", "virtual",
                                       bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"transactions\": %zu,\n  \"seeds_per_cell\": %zu,\n"
                 "  \"clean_makespan_s\": %.6f,\n"
                 "  \"r2_vs_full_overhead_ratio\": %.4f,\n"
                 "  \"crash_overhead\": [\n",
                 transactions, seeds, clean.makespan, ratio);
    for (std::size_t i = 0; i < crash_rows.size(); ++i) {
      const CrashRow& row = crash_rows[i];
      std::fprintf(out,
                   "    {\"level\": \"%s\", \"clean_s\": %.6f, "
                   "\"crash_s\": %.6f, \"overhead\": %.4f, "
                   "\"lineage_rebuilds\": %llu, \"replica_copies\": %llu, "
                   "\"image_bytes\": %llu}%s\n",
                   row.level.c_str(), row.clean_makespan, row.crash_makespan,
                   row.overhead(),
                   static_cast<unsigned long long>(row.lineage),
                   static_cast<unsigned long long>(row.replica_copies),
                   static_cast<unsigned long long>(row.image_bytes),
                   i + 1 < crash_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n  \"sweep\": [\n");
    for (std::size_t i = 0; i < sweep_rows.size(); ++i) {
      const SweepRow& row = sweep_rows[i];
      std::fprintf(out,
                   "    {\"level\": \"%s\", \"intensity\": \"%s\", "
                   "\"runs\": %zu, \"completed\": %zu, \"aborted\": %zu, "
                   "\"abort_rate\": %.4f, \"mean_overhead\": %.4f, "
                   "\"lineage_rebuilds\": %llu, \"fenced_rejections\": "
                   "%llu}%s\n",
                   row.level.c_str(), row.intensity.c_str(), row.runs,
                   row.completed, row.aborted, row.abort_rate(),
                   row.mean_overhead,
                   static_cast<unsigned long long>(row.lineage),
                   static_cast<unsigned long long>(row.fenced),
                   i + 1 < sweep_rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
