// Parallel-algorithm shoot-out (paper §3 + §8): Count Distribution,
// Data Distribution, Candidate Distribution, parallel Eclat and hybrid
// Eclat on the same database and cluster.
//
// Paper's ordering to reproduce: Data Distribution performs "very poorly"
// (ships the database every iteration); Candidate Distribution "performs
// worse than Count Distribution" (pays redistribution without amortizing
// it); Eclat beats Count Distribution by an order of magnitude.
//
//   ./bench_parallel_algorithms [--scale=0.02] [--support=0.001]
//                               [--hosts=4] [--procs=2]
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/candidate_distribution.hpp"
#include "parallel/data_distribution.hpp"
#include "parallel/hybrid.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);
  const mc::Topology topology{
      static_cast<std::size_t>(flags.get_int("hosts", 4)),
      static_cast<std::size_t>(flags.get_int("procs", 2))};

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Parallel algorithms on %s, support %.2f%%, cluster %s\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0, topology.label().c_str());
  print_rule('=', 88);
  std::printf("%-26s %12s %14s %12s %10s\n", "algorithm", "total (s)",
              "MC traffic MB", "itemsets", "vs eclat");
  print_rule('-', 88);

  double eclat_seconds = 0.0;
  const auto report = [&](const char* name,
                          const par::ParallelOutput& output) {
    std::printf("%-26s %12.2f %14.2f %12zu %9.1fx\n", name,
                output.total_seconds,
                static_cast<double>(output.mc_bytes) / 1e6,
                output.result.itemsets.size(),
                eclat_seconds > 0 ? output.total_seconds / eclat_seconds
                                  : 1.0);
  };

  {
    mc::Cluster cluster(topology);
    par::ParEclatConfig config;
    config.minsup = minsup;
    config.include_singletons = false;
    const auto output = par::par_eclat(cluster, db, config);
    eclat_seconds = output.total_seconds;
    report("eclat", output);
  }
  {
    mc::Cluster cluster(topology);
    par::ParEclatConfig config;
    config.minsup = minsup;
    config.include_singletons = false;
    report("eclat (hybrid, §8.1)", par::hybrid_eclat(cluster, db, config));
  }
  {
    mc::Cluster cluster(topology);
    par::CountDistributionConfig config;
    config.minsup = minsup;
    report("count distribution", par::count_distribution(cluster, db,
                                                         config));
  }
  {
    mc::Cluster cluster(topology);
    par::CandidateDistributionConfig config;
    config.minsup = minsup;
    report("candidate distribution",
           par::candidate_distribution(cluster, db, config));
  }
  {
    mc::Cluster cluster(topology);
    par::DataDistributionConfig config;
    config.minsup = minsup;
    report("data distribution", par::data_distribution(cluster, db,
                                                       config));
  }
  print_rule('-', 88);
  std::printf("Expected order (paper §3): eclat < CD < CandD < DD; note "
              "eclat rows exclude singletons\n(the paper's Eclat never "
              "counts 1-itemsets), so their itemset totals differ from "
              "the\nApriori-family rows by |L1|.\n");
  return 0;
}
