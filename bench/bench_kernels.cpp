// Kernel ablation trajectory — the numbers behind the adaptive tid-list
// layer. Two sections:
//
//   1. Micro: intersection throughput (tids/s) of each kernel on
//      equal-density pairs over a 256K-tid universe, density swept from
//      0.1% to 50%. Both adaptive thresholds (chunked entry 1/1024,
//      dense entry 1/128) sit inside the sweep, so kAuto should track
//      the merge kernels at the sparse end, the chunked containers in
//      the mid band, and the bitset word-AND on the dense half.
//   2. End-to-end: sequential Eclat wall time per kernel on a
//      T10.I4-style Quest database (avg pattern length 4, N = 1000) and
//      on a dense variant (N = 64) where the bitset representation
//      engages; itemset counts are cross-checked for identity.
//
// Writes a JSON trajectory to BENCH_kernels.json so the ratios are
// comparable across commits.
//
//   ./bench_kernels [--kernel=all] [--scale=0.5] [--support=0.0025]
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <string_view>
#include <vector>

#include "bench_util.hpp"
#include "common/check.hpp"
#include "common/clock.hpp"
#include "common/rng.hpp"
#include "eclat/eclat_seq.hpp"
#include "vertical/chunked_tidlist.hpp"
#include "vertical/tidset.hpp"

namespace {

using namespace eclat;

constexpr IntersectKernel kAllKernels[] = {
    IntersectKernel::kMerge, IntersectKernel::kMergeShortCircuit,
    IntersectKernel::kGallop, IntersectKernel::kBitset,
    IntersectKernel::kChunked, IntersectKernel::kAuto};

constexpr std::string_view kKernelChoices[] = {
    "all", "merge", "short-circuit", "gallop", "bitset", "chunked", "auto"};

/// Random sorted tid-list over [0, universe) with the given density.
TidList random_tidlist(Rng& rng, Tid universe, double density) {
  TidList tids;
  tids.reserve(static_cast<std::size_t>(universe * density * 1.2));
  for (Tid t = 0; t < universe; ++t) {
    if (rng.uniform() < density) tids.push_back(t);
  }
  return tids;
}

/// Tids per second of the recursion's steady-state intersection pattern
/// through the dispatched kernel, timed over enough repetitions to fill
/// ~50 ms of wall clock.
///
/// Each timed iteration is one parent join plus one reuse of its child
/// (c = a ∩ b, then c ∩ a), matching how the mining recursion treats a
/// materialized tid-list: every committed child is intersected again at
/// the next level. A discard-the-result loop would charge kAuto's
/// result normalization on every call while never crediting the cheaper
/// representation it buys — the chained shape prices both sides, and the
/// per-iteration tid count (|a|+|b| plus |c|+|a|) is identical across
/// kernels, so the ratios stay comparable. When the child comes up
/// empty the reuse leg drops out (nothing to intersect), again
/// identically for every kernel.
double intersect_throughput(const TidList& a, const TidList& b, Tid universe,
                            IntersectKernel kernel) {
  TidSet sa;
  TidSet sb;
  TidSet child;
  TidSet grandchild;
  seed_tidset(a, universe, kernel, sa, nullptr);
  seed_tidset(b, universe, kernel, sb, nullptr);
  double tids_per_call = static_cast<double>(a.size() + b.size());

  // Warm up (first calls size the output buffers), then calibrate.
  const bool reuse =
      intersect_into(sa, sb, 1, kernel, universe, child, nullptr);
  if (reuse) {
    tids_per_call += static_cast<double>(child.support() + a.size());
    intersect_into(child, sa, 1, kernel, universe, grandchild, nullptr);
  }
  std::size_t reps = 1;
  for (;;) {
    WallStopwatch watch;
    for (std::size_t r = 0; r < reps; ++r) {
      intersect_into(sa, sb, 1, kernel, universe, child, nullptr);
      if (reuse) {
        intersect_into(child, sa, 1, kernel, universe, grandchild, nullptr);
      }
    }
    const double seconds = watch.elapsed_seconds();
    if (seconds >= 0.05) {
      return tids_per_call * static_cast<double>(reps) / seconds;
    }
    reps *= seconds <= 0.005 ? 10 : 2;
  }
}

struct MicroRow {
  double density = 0.0;
  double skew = 1.0;  ///< |longer| / |shorter| for the skewed-pair sweep
  double tids_per_second[std::size(kAllKernels)] = {};
  ChunkedTidList::ContainerHistogram chunks;  ///< operand a's containers
  /// Fastest single (non-auto) kernel in this band.
  const char* winner = "";
  double winner_tps = 0.0;
};

/// Index of kAuto in kAllKernels (last entry).
constexpr std::size_t kAutoIndex = std::size(kAllKernels) - 1;

void finish_row(MicroRow& row) {
  for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
    if (k == kAutoIndex) continue;
    if (row.tids_per_second[k] > row.winner_tps) {
      row.winner_tps = row.tids_per_second[k];
      row.winner = kernel_name(kAllKernels[k]);
    }
  }
}

void print_row(const MicroRow& row, const char* label) {
  std::printf("%-9s |", label);
  for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
    std::printf(" %13.1f", row.tids_per_second[k] * 1e-6);
  }
  const double autok = row.tids_per_second[kAutoIndex];
  if (row.winner_tps > 0 && autok > 0) {
    std::printf(" | %s %.2fx", row.winner, autok / row.winner_tps);
  }
  std::printf("\n");
}

void write_micro_row(std::FILE* out, const MicroRow& row, bool last) {
  std::fprintf(out, "    {\"density\": %g, \"skew\": %g", row.density,
               row.skew);
  for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
    std::fprintf(out, ", \"%s\": %.0f", kernel_name(kAllKernels[k]),
                 row.tids_per_second[k]);
  }
  std::fprintf(out,
               ", \"winner\": \"%s\", \"chunk_containers\": "
               "{\"array\": %zu, \"bitset\": %zu, \"run\": %zu}}%s\n",
               row.winner, row.chunks.array, row.chunks.bitset,
               row.chunks.run, last ? "" : ",");
}

struct EndToEndRow {
  std::string database;
  Count minsup = 0;
  std::size_t itemsets = 0;   ///< identical across kernels (checked)
  double seconds[std::size(kAllKernels)] = {};
};

EndToEndRow run_end_to_end(const std::string& name,
                           const gen::QuestConfig& config, double support) {
  const HorizontalDatabase db = gen::QuestGenerator(config).generate();
  EndToEndRow row;
  row.database = name;
  row.minsup = absolute_support(support, db.size());

  std::printf("%-16s |D|=%zu minsup=%llu\n", name.c_str(), db.size(),
              static_cast<unsigned long long>(row.minsup));
  for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
    EclatConfig eclat_config;
    eclat_config.minsup = row.minsup;
    eclat_config.kernel = kAllKernels[k];
    WallStopwatch watch;
    const MiningResult result = eclat_sequential(db, eclat_config);
    row.seconds[k] = watch.elapsed_seconds();
    if (row.itemsets == 0) {
      row.itemsets = result.itemsets.size();
    } else if (row.itemsets != result.itemsets.size()) {
      std::fprintf(stderr, "kernel %s diverged: %zu itemsets vs %zu\n",
                   kernel_name(kAllKernels[k]), result.itemsets.size(),
                   row.itemsets);
      ECLAT_UNREACHABLE("intersect kernels disagree on the itemset count");
    }
    std::printf("  %-14s %8.3f s  (%zu itemsets)\n",
                kernel_name(kAllKernels[k]), row.seconds[k], row.itemsets);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using eclat::bench::print_rule;
  const WallStopwatch bench_watch;
  const Flags flags(argc, argv);
  const std::string kernel_filter =
      flags.get_choice("kernel", kKernelChoices, "all");
  const double scale = flags.get_double("scale", 0.5);
  const double support = flags.get_double("support", 0.0025);
  const bool write_json = flags.get_bool("json", true);

  // ---- Micro: density sweep over a 256K universe (4 chunks) ------------
  // The grid brackets every representation boundary: the chunked entry
  // threshold (1/1024 ≈ 0.001), the dense entry (1/128 ≈ 0.008), and the
  // mid band (0.016–0.0625) where the result of a dense AND leaves the
  // dense stay band and the conversion discipline is priced.
  constexpr Tid kUniverse = 1 << 18;
  constexpr double kDensities[] = {0.001, 0.002, 0.004,  0.008, 0.016, 0.03,
                                   0.045, 0.0625, 0.1,   0.25,  0.5};

  std::printf("Intersection throughput (Mtids/s), universe %u [%s]\n",
              kUniverse, simd::isa_name(simd::kernels().level));
  print_rule('=', 120);
  std::printf("%-9s |", "density");
  for (IntersectKernel kernel : kAllKernels) {
    std::printf(" %13s", kernel_name(kernel));
  }
  std::printf(" | auto vs best\n");
  print_rule('-', 120);

  const auto fill_row = [&](MicroRow& row, const TidList& a,
                            const TidList& b) {
    for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
      if (kernel_filter != "all" &&
          kernel_filter != kernel_name(kAllKernels[k])) {
        continue;
      }
      row.tids_per_second[k] =
          intersect_throughput(a, b, kUniverse, kAllKernels[k]);
    }
    ChunkedTidList chunks;
    chunks.assign(a, kUniverse);
    row.chunks = chunks.histogram();
    finish_row(row);
  };

  std::vector<MicroRow> micro;
  for (double density : kDensities) {
    Rng rng(42);
    const TidList a = random_tidlist(rng, kUniverse, density);
    const TidList b = random_tidlist(rng, kUniverse, density);
    MicroRow row;
    row.density = density;
    fill_row(row, a, b);
    char label[32];
    std::snprintf(label, sizeof label, "%g", density);
    print_row(row, label);
    micro.push_back(row);
  }
  print_rule('-', 120);

  // ---- Micro: skewed pairs (one list much shorter than the other) ------
  // Fixed longer-side density 0.0625, shorter side 1x / 32x / 256x
  // smaller: the regime where galloping and per-element probing beat any
  // full scan of the longer operand.
  std::printf("Skewed pairs, longer side density 0.0625\n");
  print_rule('-', 120);
  std::vector<MicroRow> skew_rows;
  for (double ratio : {1.0, 32.0, 256.0}) {
    Rng rng(43);
    const double dense_side = 0.0625;
    const TidList a = random_tidlist(rng, kUniverse, dense_side / ratio);
    const TidList b = random_tidlist(rng, kUniverse, dense_side);
    MicroRow row;
    row.density = dense_side;
    row.skew = ratio;
    fill_row(row, a, b);
    char label[32];
    std::snprintf(label, sizeof label, "1:%g", ratio);
    print_row(row, label);
    skew_rows.push_back(row);
  }
  print_rule('-', 120);

  // ---- End-to-end: sequential Eclat per kernel -------------------------
  std::vector<EndToEndRow> runs;
  if (kernel_filter == "all") {
    gen::QuestConfig sparse;  // T10.I4, paper-style N = 1000
    sparse.avg_pattern_length = 4.0;
    sparse.num_transactions =
        static_cast<std::size_t>(100'000 * scale);
    sparse.seed = 2004;
    runs.push_back(run_end_to_end(
        "T10.I4." + std::to_string(sparse.num_transactions / 1000) + "K",
        sparse, support));

    gen::QuestConfig dense = sparse;  // same shape, 64-item catalog: tid
    dense.num_items = 64;             // lists go dense, the bitset engages
    dense.num_patterns = 200;
    dense.seed = 2005;
    runs.push_back(run_end_to_end(
        "T10.I4.N64." + std::to_string(dense.num_transactions / 1000) + "K",
        dense, 0.05));
  }

  if (write_json) {
    const char* path = "BENCH_kernels.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"kernels\",\n");
    eclat::bench::write_backend_fields(out, "host", "wall",
                                       bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"universe\": %u,\n  \"micro_tids_per_second\": [\n",
                 kUniverse);
    for (std::size_t i = 0; i < micro.size(); ++i) {
      write_micro_row(out, micro[i], i + 1 == micro.size());
    }
    std::fprintf(out, "  ],\n  \"micro_skewed_tids_per_second\": [\n");
    for (std::size_t i = 0; i < skew_rows.size(); ++i) {
      write_micro_row(out, skew_rows[i], i + 1 == skew_rows.size());
    }
    std::fprintf(out, "  ],\n  \"end_to_end_seconds\": [\n");
    for (std::size_t i = 0; i < runs.size(); ++i) {
      const EndToEndRow& row = runs[i];
      std::fprintf(out,
                   "    {\"database\": \"%s\", \"minsup\": %llu, "
                   "\"itemsets\": %zu",
                   row.database.c_str(),
                   static_cast<unsigned long long>(row.minsup), row.itemsets);
      for (std::size_t k = 0; k < std::size(kAllKernels); ++k) {
        std::fprintf(out, ", \"%s\": %.6f", kernel_name(kAllKernels[k]),
                     row.seconds[k]);
      }
      std::fprintf(out, "}%s\n", i + 1 < runs.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
