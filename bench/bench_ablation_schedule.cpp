// Ablation — equivalence-class scheduling (paper §5.2.1): the greedy
// C(s,2)-weight heuristic vs naive round-robin placement. Reports the
// resulting load imbalance and the virtual makespan of parallel Eclat's
// asynchronous phase under each schedule.
//
//   ./bench_ablation_schedule [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/par_eclat.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);

  const HorizontalDatabase db = make_database(kPaperDatabases[0], scale);
  const Count minsup = absolute_support(support, db.size());

  std::printf("Ablation: class scheduling on %s, support %.2f%%\n",
              scaled_name(kPaperDatabases[0], scale).c_str(),
              support * 100.0);
  print_rule('=');
  std::printf("%-14s %-14s %12s %14s %12s\n", "Config", "heuristic",
              "total (s)", "async (s)", "vs greedy");
  print_rule();

  for (const mc::Topology topology :
       {mc::Topology{4, 1}, mc::Topology{8, 1}, mc::Topology{8, 4}}) {
    double greedy_total = 0.0;
    for (const auto schedule : {par::ScheduleHeuristic::kGreedyWeight,
                                par::ScheduleHeuristic::kGreedySupport,
                                par::ScheduleHeuristic::kRoundRobin}) {
      mc::Cluster cluster(topology);
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.schedule = schedule;
      config.include_singletons = false;
      const par::ParallelOutput run = par::par_eclat(cluster, db, config);
      const bool is_greedy =
          schedule == par::ScheduleHeuristic::kGreedyWeight;
      if (is_greedy) greedy_total = run.total_seconds;
      const char* name = is_greedy ? "greedy-C(s,2)"
                         : schedule == par::ScheduleHeuristic::kGreedySupport
                             ? "greedy-support"
                             : "round-robin";
      std::printf("%-14s %-14s %12.3f %14.3f %11.2fx\n",
                  topology.label().c_str(), name, run.total_seconds,
                  run.phase_seconds.at("asynchronous"),
                  run.total_seconds / greedy_total);
    }
    print_rule();
  }
  std::printf("The asynchronous phase absorbs whatever imbalance the heuristic leaves;\n"
              "C(s,2) only approximates real intersection work, so support-aware\n"
              "weights (the paper\'s §5.2.1 suggestion) can beat it.\n");
  return 0;
}
