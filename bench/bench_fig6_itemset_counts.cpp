// Figure 6 — "Number of frequent k-itemsets" at minimum support 0.1% for
// each evaluation database. The paper's curves rise to a peak around
// k = 4-6 (thousands of itemsets) and tail off by k = 12; smaller
// databases have *more* frequent itemsets at fixed relative support
// (fewer transactions are needed to clear the bar).
//
//   ./bench_fig6_itemset_counts [--scale=0.02] [--support=0.001]
#include <cstdio>

#include "bench_util.hpp"
#include "eclat/eclat_seq.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.02);
  const double support = flags.get_double("support", kPaperSupport);

  std::printf("Figure 6: frequent k-itemsets at support = %.2f%% "
              "(scale %.3g)\n",
              support * 100.0, scale);
  print_rule('=');

  // Collect the per-size series for every database first.
  std::vector<std::vector<std::size_t>> series;
  std::vector<std::string> names;
  std::size_t max_k = 0;
  for (const PaperDatabase& spec : kPaperDatabases) {
    const HorizontalDatabase db = make_database(spec, scale);
    EclatConfig config;
    config.minsup = absolute_support(support, db.size());
    config.include_singletons = false;  // paper counts k >= 2
    const MiningResult result = eclat_sequential(db, config);
    std::vector<std::size_t> counts(result.max_size() + 1, 0);
    for (std::size_t k = 2; k <= result.max_size(); ++k) {
      counts[k] = result.count_of_size(k);
    }
    max_k = std::max(max_k, result.max_size());
    series.push_back(std::move(counts));
    names.push_back(scaled_name(spec, scale));
  }

  std::printf("%4s", "k");
  for (const std::string& name : names) {
    std::printf(" %20s", name.c_str());
  }
  std::printf("\n");
  print_rule();
  for (std::size_t k = 2; k <= max_k; ++k) {
    std::printf("%4zu", k);
    for (const auto& counts : series) {
      std::printf(" %20zu", k < counts.size() ? counts[k] : 0);
    }
    std::printf("\n");
  }
  print_rule();
  std::printf("Expected shape: unimodal in k with the peak near k = 4-6; "
              "smaller |D| => more itemsets.\n");
  return 0;
}
