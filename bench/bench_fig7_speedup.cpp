// Figure 7 — "ECLAT Parallel Performance on Different Databases": speedup
// of parallel Eclat relative to its sequential run, per database, across
// processor configurations.
//
// Paper shape:
//   - speedups grow with the number of hosts; close to linear in H for
//     the large databases at P = 1;
//   - for a fixed total T, configurations with FEWER processors per host
//     win (e.g. at T = 8, (H=8,P=1) > (H=4,P=2) > (H=2,P=4)) because
//     host-local disk contention hurts the scan phases;
//   - bigger databases scale better (higher compute-to-contention ratio).
//
//   ./bench_fig7_speedup [--scale=0.02] [--support=0.001] [--databases=3]
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/par_eclat.hpp"

int main(int argc, char** argv) {
  using namespace eclat;
  using namespace eclat::bench;
  const Flags flags(argc, argv);
  // Figure 7 runs Eclat only (cheap), so it affords a larger default
  // scale; fixed communication costs then shrink relative to compute and
  // the speedup curves extend further before flattening, as in the paper.
  const double scale = flags.get_double("scale", 0.05);
  const double support = flags.get_double("support", kPaperSupport);
  const std::size_t num_databases =
      static_cast<std::size_t>(flags.get_int("databases", 3));

  std::printf("Figure 7: Eclat speedup vs sequential, support %.2f%%, "
              "scale %.3g\n",
              support * 100.0, scale);
  print_rule('=');

  for (std::size_t d = 0; d < num_databases && d < 4; ++d) {
    const PaperDatabase& spec = kPaperDatabases[d];
    const HorizontalDatabase db = make_database(spec, scale);
    const Count minsup = absolute_support(support, db.size());

    double sequential_seconds = 0.0;
    std::printf("\nDatabase: %s\n", scaled_name(spec, scale).c_str());
    std::printf("%-14s %4s %12s %10s\n", "Config", "T", "total(s)",
                "speedup");
    print_rule();
    for (const mc::Topology& topology : paper_topologies()) {
      mc::Cluster cluster(topology);
      par::ParEclatConfig config;
      config.minsup = minsup;
      config.include_singletons = false;
      const par::ParallelOutput run = par::par_eclat(cluster, db, config);
      if (topology.total() == 1) sequential_seconds = run.total_seconds;
      std::printf("%-14s %4zu %12.2f %9.2fx\n", topology.label().c_str(),
                  topology.total(), run.total_seconds,
                  sequential_seconds / run.total_seconds);
    }
  }
  print_rule();
  std::printf("Expected shape: speedup grows with hosts; at fixed T, "
              "fewer procs/host is faster (disk contention).\n");
  return 0;
}
