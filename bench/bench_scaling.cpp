// Shared-memory scaling of the Par-Eclat pipeline through the execution
// backend seam: the same sweep runs on the native thread pool (wall
// seconds, the point of this bench) or on the mc simulator (virtual
// seconds, the paper's Fig 7 shape) — selected with --backend.
//
// For each database (the sparse T10.I4 and the dense T10.I4.N64 of the
// kernel bench) and each worker count 1..N (powers of two up to the
// resolved --exec-threads), the bench times the static greedy C(s,2)
// schedule against work-stealing and byte-compares every output against
// the mc reference run — the determinism contract of DESIGN.md §9 as a
// benchmark invariant.
//
// Writes BENCH_scaling.json. The file carries a `host_cores` field: on a
// 1-core container every wall-clock "speedup" is honestly ~1x, and the
// trajectory is only meaningful on runners with real parallelism.
//
//   ./bench_scaling [--scale=0.25] [--support=0.0025] [--backend=threads]
//                   [--exec-threads=0] [--exec-sched=both] [--json=true]
#include <cstdio>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/clock.hpp"
#include "data/result_io.hpp"
#include "exec/backend.hpp"
#include "gen/quest.hpp"

namespace {

using namespace eclat;

struct Row {
  std::string database;
  std::size_t threads = 0;
  std::string scheduler;
  double seconds = 0.0;       ///< backend clock (wall for threads, virtual for mc)
  double wall_seconds = 0.0;  ///< host wall clock of the run
  double speedup = 0.0;       ///< vs the 1-worker run of the same scheduler
  bool identical = false;     ///< byte-identical to the mc reference
};

}  // namespace

int main(int argc, char** argv) {
  using eclat::bench::print_rule;
  const WallStopwatch bench_watch;
  const Flags flags(argc, argv);

  constexpr std::string_view kBackendChoices[] = {"mc", "threads"};
  constexpr std::string_view kSchedChoices[] = {"both", "static", "steal"};
  const exec::BackendKind backend_kind =
      exec::parse_backend(flags.get_choice("backend", kBackendChoices,
                                           "threads"));
  const std::string sched_choice =
      flags.get_choice("exec-sched", kSchedChoices, "both");
  const std::uint64_t requested = flags.get_uint("exec-threads", 0);
  const std::size_t max_threads =
      exec::resolve_threads(static_cast<std::size_t>(requested));
  const double scale = flags.get_double("scale", 0.25);
  const double support = flags.get_double("support", 0.0025);
  const bool write_json = flags.get_bool("json", true);
  const unsigned host_cores = std::thread::hardware_concurrency();

  if (requested == 0) {
    std::printf("--exec-threads=0 resolved to %zu (hardware concurrency)\n",
                max_threads);
  }
  std::printf("backend=%s host_cores=%u max_threads=%zu\n\n",
              exec::to_string(backend_kind), host_cores, max_threads);

  // Worker counts: powers of two up to the resolved maximum, plus the
  // maximum itself when it is not a power of two.
  std::vector<std::size_t> sweep;
  for (std::size_t t = 1; t <= max_threads; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_threads) sweep.push_back(max_threads);

  // The mc simulator has no work-stealing scheduler; its sweep is the
  // static schedule only.
  std::vector<exec::ClassScheduler> schedulers;
  if (backend_kind == exec::BackendKind::kThreads && sched_choice != "steal") {
    schedulers.push_back(exec::ClassScheduler::kStatic);
  }
  if (backend_kind == exec::BackendKind::kThreads && sched_choice != "static") {
    schedulers.push_back(exec::ClassScheduler::kWorkStealing);
  }
  if (backend_kind == exec::BackendKind::kMc) {
    schedulers.assign(1, exec::ClassScheduler::kStatic);
  }

  struct Database {
    std::string name;
    HorizontalDatabase db;
    double support;
  };
  std::vector<Database> databases;
  {
    gen::QuestConfig sparse;  // T10.I4, paper-style N = 1000
    sparse.avg_pattern_length = 4.0;
    sparse.num_transactions = static_cast<std::size_t>(100'000 * scale);
    sparse.seed = 2004;
    databases.push_back(
        {"T10.I4." + std::to_string(sparse.num_transactions / 1000) + "K",
         gen::QuestGenerator(sparse).generate(), support});

    gen::QuestConfig dense = sparse;  // 64-item catalog: dense tid-lists
    dense.num_items = 64;
    dense.num_patterns = 200;
    dense.seed = 2005;
    databases.push_back(
        {"T10.I4.N64." + std::to_string(dense.num_transactions / 1000) + "K",
         gen::QuestGenerator(dense).generate(), 0.05});
  }

  std::vector<Row> rows;
  for (const Database& spec : databases) {
    par::ParEclatConfig config;
    config.minsup = absolute_support(spec.support, spec.db.size());

    // The mc backend at T = 1 is the reference every run must match
    // byte-for-byte — cross-backend, cross-thread-count, cross-scheduler.
    const std::unique_ptr<exec::Backend> reference = exec::make_backend(
        exec::BackendKind::kMc, mc::Topology{1, 1}, mc::CostModel{}, {});
    const std::vector<std::uint8_t> reference_bytes =
        result_to_bytes(reference->mine(spec.db, config).result);

    std::printf("%-16s |D|=%zu minsup=%llu (%zu itemsets)\n",
                spec.name.c_str(), spec.db.size(),
                static_cast<unsigned long long>(config.minsup),
                result_from_bytes(reference_bytes).itemsets.size());
    print_rule('-', 64);

    for (exec::ClassScheduler scheduler : schedulers) {
      double base_seconds = 0.0;
      for (std::size_t threads : sweep) {
        exec::ThreadBackendOptions thread_options;
        thread_options.threads = threads;
        thread_options.scheduler = scheduler;
        const std::unique_ptr<exec::Backend> backend = exec::make_backend(
            backend_kind, mc::Topology{1, threads}, mc::CostModel{},
            thread_options);
        const par::ParallelOutput run = backend->mine(spec.db, config);

        Row row;
        row.database = spec.name;
        row.threads = run.exec_threads;
        row.scheduler = exec::to_string(scheduler);
        row.seconds = run.total_seconds;
        row.wall_seconds = run.wall_seconds;
        if (threads == sweep.front()) base_seconds = run.total_seconds;
        row.speedup = row.seconds > 0 ? base_seconds / row.seconds : 0.0;
        row.identical =
            result_to_bytes(run.result) == reference_bytes;
        std::printf("  %-7s T=%-3zu %9.4f s   speedup %5.2fx   %s\n",
                    row.scheduler.c_str(), row.threads, row.seconds,
                    row.speedup,
                    row.identical ? "identical" : "OUTPUT DIVERGED");
        rows.push_back(row);
        if (!row.identical) {
          std::fprintf(stderr, "output diverged from the mc reference\n");
          return 1;
        }
      }
    }
    std::printf("\n");
  }

  if (write_json) {
    const char* path = "BENCH_scaling.json";
    std::FILE* out = std::fopen(path, "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path);
      return 1;
    }
    std::fprintf(out, "{\n  \"benchmark\": \"scaling\",\n");
    eclat::bench::write_backend_fields(
        out, exec::to_string(backend_kind),
        backend_kind == exec::BackendKind::kMc ? "virtual" : "wall",
        bench_watch.elapsed_seconds());
    std::fprintf(out,
                 "  \"host_cores\": %u,\n  \"max_threads\": %zu,\n"
                 "  \"scale\": %g,\n  \"rows\": [\n",
                 host_cores, max_threads, scale);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const Row& row = rows[i];
      std::fprintf(out,
                   "    {\"database\": \"%s\", \"threads\": %zu, "
                   "\"scheduler\": \"%s\", \"seconds\": %.6f, "
                   "\"wall_seconds\": %.6f, \"speedup\": %.4f, "
                   "\"identical\": %s}%s\n",
                   row.database.c_str(), row.threads, row.scheduler.c_str(),
                   row.seconds, row.wall_seconds, row.speedup,
                   row.identical ? "true" : "false",
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path);
  }
  return 0;
}
